//! Deterministic failure injection: link outage windows, packet loss,
//! fog-node crash/recover windows and flush-shipment faults.
//!
//! The paper argues F2C "enhances fault tolerance" because shorter paths
//! cross fewer failure domains (§IV.D). The failure-injection experiments
//! quantify that: with the same per-link loss/outage model, fog-local
//! accesses survive outages that break edge-to-cloud paths.
//!
//! Every probabilistic draw is a **keyed hash coin**, not a shared RNG
//! stream: the verdict for a message is a pure function of
//! `(seed, link, per-link sequence)` — and for a flush shipment of
//! `(seed, sender, flush epoch)` — so reordering unrelated sends (a
//! future sharded runtime, replay from a different entry point) never
//! changes which messages drop. Replays are bit-identical per seed.

use std::collections::HashMap;

use super::{LinkId, NodeId};
use crate::time::SimTime;

/// A scheduled outage window `[from, until)` on one link or node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outage {
    from: SimTime,
    until: SimTime,
}

fn in_any(windows: Option<&Vec<Outage>>, at: SimTime) -> bool {
    windows.is_some_and(|ws| ws.iter().any(|w| at >= w.from && at < w.until))
}

/// splitmix64 finalizer: a few cheap rounds that spread every input bit
/// across the output, so consecutive sequence numbers yield independent
/// coins.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed hash over `(seed, domain, a, b)`. Each fault family uses its
/// own `domain` constant so a link coin and a shipment coin with equal
/// operands stay independent.
fn keyed(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    mix(mix(mix(seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ a) ^ b)
}

/// Converts a hash to a Bernoulli draw with success probability `p`.
fn coin(h: u64, p: f64) -> bool {
    // 53 uniform mantissa bits — the standard open-interval construction.
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

const DOMAIN_LINK_LOSS: u64 = 0x11;
const DOMAIN_SHIP_LOSS: u64 = 0x22;
const DOMAIN_SHIP_CORRUPT: u64 = 0x33;
const DOMAIN_PAYLOAD_CORRUPT: u64 = 0x44;

/// Failure plan: per-link outages and message loss, per-node
/// crash/recover windows, and flush-shipment loss/corruption.
///
/// Loss draws are keyed hash coins over the message identity, so a plan
/// replayed against the same message sequence produces the same drops
/// regardless of how unrelated sends interleave.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    seed: u64,
    outages: HashMap<LinkId, Vec<Outage>>,
    node_outages: HashMap<NodeId, Vec<Outage>>,
    loss: HashMap<LinkId, f64>,
    /// Per-link message sequence counters keying the loss coin.
    seq: HashMap<LinkId, u64>,
    /// Probability one flush-wave shipment is lost in transit (the
    /// sender detects the failure and retries next flush).
    shipment_loss: f64,
    /// Probability one flush-wave sketch shipment arrives corrupted
    /// (fails its CRC at the receiver and punches a coverage hole).
    shipment_corruption: f64,
    /// Probability one flush-wave *record payload* would arrive
    /// corrupted (link-layer detected; the sender defers the wave).
    payload_corruption: f64,
}

impl FailurePlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        Self::with_seed(0)
    }

    /// An empty plan whose loss draws use `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            outages: HashMap::new(),
            node_outages: HashMap::new(),
            loss: HashMap::new(),
            seq: HashMap::new(),
            shipment_loss: 0.0,
            shipment_corruption: 0.0,
            payload_corruption: 0.0,
        }
    }

    /// Schedules an outage on `link` for `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn add_outage(&mut self, link: LinkId, from: SimTime, until: SimTime) {
        assert!(until > from, "outage window must be non-empty");
        self.outages
            .entry(link)
            .or_default()
            .push(Outage { from, until });
    }

    /// Schedules a crash window on `node` for `[from, until)`: while
    /// down the node neither flushes, ingests, heals nor serves.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn add_node_outage(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        assert!(until > from, "outage window must be non-empty");
        self.node_outages
            .entry(node)
            .or_default()
            .push(Outage { from, until });
    }

    /// Sets an i.i.d. message-loss probability on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_loss(&mut self, link: LinkId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        if p > 0.0 {
            self.loss.insert(link, p);
        } else {
            self.loss.remove(&link);
        }
    }

    /// Sets the i.i.d. probability that a whole flush-wave shipment is
    /// lost in transit (sender-detected; the batch stays queued below).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_shipment_loss(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.shipment_loss = p;
    }

    /// Sets the i.i.d. probability that a flush-wave sketch shipment
    /// arrives corrupted (one encoded partial fails its CRC).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_shipment_corruption(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.shipment_corruption = p;
    }

    /// Sets the i.i.d. probability that a flush-wave record payload
    /// would arrive corrupted. The damage is link-layer detected, so
    /// the sender defers the wave exactly like a shipment loss — the
    /// flush codec's cross-batch dictionary state must never advance
    /// past an undelivered shipment.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_payload_corruption(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.payload_corruption = p;
    }

    /// Whether `link` is inside an outage window at `at`.
    pub fn is_down(&self, link: LinkId, at: SimTime) -> bool {
        in_any(self.outages.get(&link), at)
    }

    /// Whether `node` is inside a crash window at `at`.
    pub fn node_is_down(&self, node: NodeId, at: SimTime) -> bool {
        in_any(self.node_outages.get(&node), at)
    }

    /// Draws the loss coin for one message on `link`: a keyed hash of
    /// `(seed, link, per-link message sequence)`, so the verdict for the
    /// n-th message of a link is fixed per seed no matter how sends on
    /// other links interleave.
    pub fn drops(&mut self, link: LinkId) -> bool {
        let n = self.seq.entry(link).or_insert(0);
        let seq = *n;
        *n += 1;
        self.loss_verdict(link, seq)
    }

    /// The loss verdict for the `seq`-th message ever sent on `link` —
    /// the pure function behind [`FailurePlan::drops`]. Sharded senders
    /// draw against an explicit sequence (base + their local count) so a
    /// read-only phase can toss coins without mutating the plan.
    pub fn loss_verdict(&self, link: LinkId, seq: u64) -> bool {
        match self.loss.get(&link) {
            Some(&p) => coin(
                keyed(self.seed, DOMAIN_LINK_LOSS, link.index() as u64, seq),
                p,
            ),
            None => false,
        }
    }

    /// The next unused loss-coin sequence number of `link`.
    pub fn loss_seq(&self, link: LinkId) -> u64 {
        self.seq.get(&link).copied().unwrap_or(0)
    }

    /// Advances `link`'s loss-coin sequence by `n` draws — how a shard's
    /// buffered sends are folded back into the plan at a barrier.
    pub fn advance_loss_seq(&mut self, link: LinkId, n: u64) {
        if n > 0 {
            *self.seq.entry(link).or_insert(0) += n;
        }
    }

    /// Whether the flush shipment `sender` ships at flush `epoch` is
    /// lost in transit. Pure in `(seed, sender, epoch)` — replays and
    /// re-asks agree.
    pub fn shipment_lost(&self, sender: NodeId, epoch: u64) -> bool {
        self.shipment_loss > 0.0
            && coin(
                keyed(self.seed, DOMAIN_SHIP_LOSS, sender.index() as u64, epoch),
                self.shipment_loss,
            )
    }

    /// Which of the `n_sketches` encoded partials in `sender`'s flush
    /// `epoch` shipment arrives corrupted, if any. Pure in
    /// `(seed, sender, epoch)`.
    pub fn corrupted_sketch(&self, sender: NodeId, epoch: u64, n_sketches: usize) -> Option<usize> {
        if n_sketches == 0 || self.shipment_corruption == 0.0 {
            return None;
        }
        let h = keyed(self.seed, DOMAIN_SHIP_CORRUPT, sender.index() as u64, epoch);
        coin(h, self.shipment_corruption).then(|| (mix(h) % n_sketches as u64) as usize)
    }

    /// Whether the record payload `sender` would ship at flush `epoch`
    /// arrives corrupted. Pure in `(seed, sender, epoch)`, drawn at the
    /// flush gate so the verdict defers the wave *before* the batch is
    /// taken or the codec advances.
    pub fn payload_corrupted(&self, sender: NodeId, epoch: u64) -> bool {
        self.payload_corruption > 0.0
            && coin(
                keyed(
                    self.seed,
                    DOMAIN_PAYLOAD_CORRUPT,
                    sender.index() as u64,
                    epoch,
                ),
                self.payload_corruption,
            )
    }

    /// Whether the plan injects any failures at all.
    pub fn is_trivial(&self) -> bool {
        self.outages.is_empty()
            && self.node_outages.is_empty()
            && self.loss.is_empty()
            && self.shipment_loss == 0.0
            && self.shipment_corruption == 0.0
            && self.payload_corruption == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Link, Topology};
    use crate::time::Duration;

    fn one_link() -> (Topology, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link(a, b, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        (t, l)
    }

    fn two_links() -> (Topology, LinkId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l1 = t
            .add_link(a, b, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        let l2 = t
            .add_link(b, c, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        (t, l1, l2)
    }

    #[test]
    fn outage_windows_are_half_open() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!p.is_down(l, SimTime::from_secs(9)));
        assert!(p.is_down(l, SimTime::from_secs(10)));
        assert!(p.is_down(l, SimTime::from_secs(19)));
        assert!(!p.is_down(l, SimTime::from_secs(20)));
    }

    #[test]
    fn multiple_windows_supported() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(1), SimTime::from_secs(2));
        p.add_outage(l, SimTime::from_secs(5), SimTime::from_secs(6));
        assert!(p.is_down(l, SimTime::from_secs(1)));
        assert!(!p.is_down(l, SimTime::from_secs(3)));
        assert!(p.is_down(l, SimTime::from_secs(5)));
    }

    #[test]
    fn overlapping_and_duplicate_windows_union() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        // Overlapping windows: [10, 30) and [20, 50) act as [10, 50).
        p.add_outage(l, SimTime::from_secs(10), SimTime::from_secs(30));
        p.add_outage(l, SimTime::from_secs(20), SimTime::from_secs(50));
        // An exact duplicate of the first must change nothing.
        p.add_outage(l, SimTime::from_secs(10), SimTime::from_secs(30));
        assert!(!p.is_down(l, SimTime::from_secs(9)));
        for t in [10u64, 19, 20, 29, 30, 49] {
            assert!(p.is_down(l, SimTime::from_secs(t)), "down at {t}");
        }
        assert!(!p.is_down(l, SimTime::from_secs(50)));
        // A window nested entirely inside another adds nothing either.
        p.add_outage(l, SimTime::from_secs(12), SimTime::from_secs(14));
        assert!(p.is_down(l, SimTime::from_secs(13)));
        assert!(!p.is_down(l, SimTime::from_secs(50)));
    }

    #[test]
    fn node_outage_windows_are_half_open() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let mut p = FailurePlan::none();
        p.add_node_outage(a, SimTime::from_secs(100), SimTime::from_secs(200));
        assert!(!p.node_is_down(a, SimTime::from_secs(99)));
        assert!(p.node_is_down(a, SimTime::from_secs(100)));
        assert!(p.node_is_down(a, SimTime::from_secs(199)));
        assert!(!p.node_is_down(a, SimTime::from_secs(200)));
        assert!(
            !p.node_is_down(b, SimTime::from_secs(150)),
            "only a is down"
        );
        assert!(!p.is_trivial());
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let (_, l) = one_link();
        let mut p = FailurePlan::with_seed(7);
        p.set_loss(l, 0.25);
        let dropped = (0..10_000).filter(|_| p.drops(l)).count();
        assert!((2000..3000).contains(&dropped), "dropped {dropped}/10000");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let (_, l) = one_link();
        let mut p1 = FailurePlan::with_seed(3);
        let mut p2 = FailurePlan::with_seed(3);
        p1.set_loss(l, 0.5);
        p2.set_loss(l, 0.5);
        for _ in 0..100 {
            assert_eq!(p1.drops(l), p2.drops(l));
        }
    }

    #[test]
    fn loss_verdicts_ignore_cross_link_interleaving() {
        // The satellite fix: the n-th message of a link gets the same
        // verdict whether or not other links' sends interleave.
        let (_, l1, l2) = two_links();
        let mut sequential = FailurePlan::with_seed(11);
        sequential.set_loss(l1, 0.4);
        sequential.set_loss(l2, 0.4);
        let alone: Vec<bool> = (0..200).map(|_| sequential.drops(l1)).collect();

        let mut interleaved = FailurePlan::with_seed(11);
        interleaved.set_loss(l1, 0.4);
        interleaved.set_loss(l2, 0.4);
        let mut mixed = Vec::new();
        for i in 0..200 {
            // Unrelated traffic on l2, interleaved unevenly.
            for _ in 0..(i % 3) {
                interleaved.drops(l2);
            }
            mixed.push(interleaved.drops(l1));
        }
        assert_eq!(alone, mixed, "l2 traffic must not perturb l1 verdicts");
    }

    #[test]
    fn shipment_coins_are_pure_functions_of_identity() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let mut p = FailurePlan::with_seed(5);
        p.set_shipment_loss(0.3);
        p.set_shipment_corruption(0.3);
        // Re-asking never changes the verdict (no hidden state).
        for epoch in 0..50u64 {
            assert_eq!(p.shipment_lost(a, epoch), p.shipment_lost(a, epoch));
            assert_eq!(
                p.corrupted_sketch(a, epoch, 7),
                p.corrupted_sketch(a, epoch, 7)
            );
        }
        // Different senders draw independent coins.
        let a_hits = (0..1000).filter(|&e| p.shipment_lost(a, e)).count();
        let b_hits = (0..1000).filter(|&e| p.shipment_lost(b, e)).count();
        assert!((200..400).contains(&a_hits), "a lost {a_hits}/1000");
        assert!((200..400).contains(&b_hits), "b lost {b_hits}/1000");
        // A corrupted index always lies inside the shipment.
        for epoch in 0..200u64 {
            if let Some(i) = p.corrupted_sketch(b, epoch, 7) {
                assert!(i < 7);
            }
        }
        assert_eq!(p.corrupted_sketch(a, 0, 0), None, "empty shipments pass");
    }

    #[test]
    fn payload_corruption_coin_is_pure_and_counts_toward_triviality() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let mut p = FailurePlan::with_seed(5);
        assert!(p.is_trivial());
        p.set_payload_corruption(0.3);
        assert!(!p.is_trivial());
        for epoch in 0..50u64 {
            assert_eq!(p.payload_corrupted(a, epoch), p.payload_corrupted(a, epoch));
        }
        let a_hits = (0..1000).filter(|&e| p.payload_corrupted(a, e)).count();
        let b_hits = (0..1000).filter(|&e| p.payload_corrupted(b, e)).count();
        assert!((200..400).contains(&a_hits), "a corrupted {a_hits}/1000");
        assert!((200..400).contains(&b_hits), "b corrupted {b_hits}/1000");
        // The payload coin is independent of the shipment-loss coin: the
        // two domains must not shadow each other.
        p.set_shipment_loss(0.3);
        let overlap = (0..1000)
            .filter(|&e| p.payload_corrupted(a, e) && p.shipment_lost(a, e))
            .count();
        assert!(overlap < a_hits, "coins are perfectly correlated");
        p.set_payload_corruption(0.0);
        assert!(!p.payload_corrupted(a, 0));
    }

    #[test]
    fn zero_loss_clears_the_entry() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.set_loss(l, 0.9);
        p.set_loss(l, 0.0);
        assert!(p.is_trivial());
        assert!(!p.drops(l));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_rejected() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_node_outage_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let mut p = FailurePlan::none();
        p.add_node_outage(a, SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
