//! Deterministic failure injection: link outage windows and packet loss.
//!
//! The paper argues F2C "enhances fault tolerance" because shorter paths
//! cross fewer failure domains (§IV.D). The failure-injection experiments
//! quantify that: with the same per-link loss/outage model, fog-local
//! accesses survive outages that break edge-to-cloud paths.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::LinkId;
use crate::time::SimTime;

/// A scheduled outage window `[from, until)` on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outage {
    from: SimTime,
    until: SimTime,
}

/// Failure plan: per-link outages and per-link message loss probability.
///
/// Loss draws come from an internal seeded RNG, so a plan replayed against
/// the same message sequence produces the same drops.
#[derive(Debug)]
pub struct FailurePlan {
    outages: HashMap<LinkId, Vec<Outage>>,
    loss: HashMap<LinkId, f64>,
    rng: SmallRng,
}

impl FailurePlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        Self::with_seed(0)
    }

    /// An empty plan whose loss draws use `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            outages: HashMap::new(),
            loss: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Schedules an outage on `link` for `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn add_outage(&mut self, link: LinkId, from: SimTime, until: SimTime) {
        assert!(until > from, "outage window must be non-empty");
        self.outages
            .entry(link)
            .or_default()
            .push(Outage { from, until });
    }

    /// Sets an i.i.d. message-loss probability on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_loss(&mut self, link: LinkId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        if p > 0.0 {
            self.loss.insert(link, p);
        } else {
            self.loss.remove(&link);
        }
    }

    /// Whether `link` is inside an outage window at `at`.
    pub fn is_down(&self, link: LinkId, at: SimTime) -> bool {
        self.outages
            .get(&link)
            .is_some_and(|ws| ws.iter().any(|w| at >= w.from && at < w.until))
    }

    /// Draws the loss coin for one message on `link`.
    pub fn drops(&mut self, link: LinkId) -> bool {
        match self.loss.get(&link) {
            Some(&p) => self.rng.gen_bool(p),
            None => false,
        }
    }

    /// Whether the plan injects any failures at all.
    pub fn is_trivial(&self) -> bool {
        self.outages.is_empty() && self.loss.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Link, Topology};
    use crate::time::Duration;

    fn one_link() -> (Topology, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link(a, b, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        (t, l)
    }

    #[test]
    fn outage_windows_are_half_open() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!p.is_down(l, SimTime::from_secs(9)));
        assert!(p.is_down(l, SimTime::from_secs(10)));
        assert!(p.is_down(l, SimTime::from_secs(19)));
        assert!(!p.is_down(l, SimTime::from_secs(20)));
    }

    #[test]
    fn multiple_windows_supported() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(1), SimTime::from_secs(2));
        p.add_outage(l, SimTime::from_secs(5), SimTime::from_secs(6));
        assert!(p.is_down(l, SimTime::from_secs(1)));
        assert!(!p.is_down(l, SimTime::from_secs(3)));
        assert!(p.is_down(l, SimTime::from_secs(5)));
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let (_, l) = one_link();
        let mut p = FailurePlan::with_seed(7);
        p.set_loss(l, 0.25);
        let dropped = (0..10_000).filter(|_| p.drops(l)).count();
        assert!((2000..3000).contains(&dropped), "dropped {dropped}/10000");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let (_, l) = one_link();
        let mut p1 = FailurePlan::with_seed(3);
        let mut p2 = FailurePlan::with_seed(3);
        p1.set_loss(l, 0.5);
        p2.set_loss(l, 0.5);
        for _ in 0..100 {
            assert_eq!(p1.drops(l), p2.drops(l));
        }
    }

    #[test]
    fn zero_loss_clears_the_entry() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.set_loss(l, 0.9);
        p.set_loss(l, 0.0);
        assert!(p.is_trivial());
        assert!(!p.drops(l));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_rejected() {
        let (_, l) = one_link();
        let mut p = FailurePlan::none();
        p.add_outage(l, SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
