//! Per-link and per-node traffic accounting, with an hourly time series
//! for peak/off-peak analysis (§IV.D: "use the network in periods when the
//! traffic load is low").

use std::collections::BTreeMap;

use super::{LinkId, NodeId, Topology};
use crate::time::SimTime;

/// Traffic counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Total bytes carried.
    pub bytes: u64,
    /// Total messages carried.
    pub messages: u64,
}

/// Byte/message accounting for every link and node of a topology.
///
/// The experiments read these meters to produce the paper's traffic tables:
/// "bytes received at fog layer 2 per day" is the sum of `node_ingress`
/// over the fog-2 nodes, and so on.
#[derive(Debug, Clone, Default)]
pub struct TrafficMeter {
    per_link: Vec<LinkTraffic>,
    node_ingress: Vec<u64>,
    node_egress: Vec<u64>,
    /// Bytes per simulated hour (hour index since start).
    hourly: BTreeMap<u64, u64>,
}

impl TrafficMeter {
    /// Creates meters sized for `topo`.
    pub fn for_topology(topo: &Topology) -> Self {
        Self {
            per_link: vec![LinkTraffic::default(); topo.link_count()],
            node_ingress: vec![0; topo.node_count()],
            node_egress: vec![0; topo.node_count()],
            hourly: BTreeMap::new(),
        }
    }

    /// Records `bytes` moving across `link` from `src` towards `dst` at
    /// simulated time `at`.
    pub fn record(&mut self, link: LinkId, src: NodeId, dst: NodeId, bytes: u64, at: SimTime) {
        let t = &mut self.per_link[link.index()];
        t.bytes += bytes;
        t.messages += 1;
        self.node_egress[src.index()] += bytes;
        self.node_ingress[dst.index()] += bytes;
        *self.hourly.entry(at.as_secs() / 3600).or_insert(0) += bytes;
    }

    /// Bytes per simulated hour (hour index since start → bytes).
    pub fn hourly_bytes(&self) -> &BTreeMap<u64, u64> {
        &self.hourly
    }

    /// Fraction of all bytes that moved within the daily time-of-day
    /// window `[start_s, end_s)` (seconds since midnight).
    pub fn window_share(&self, start_s: u64, end_s: u64) -> f64 {
        let total: u64 = self.hourly.values().sum();
        if total == 0 {
            return 0.0;
        }
        let inside: u64 = self
            .hourly
            .iter()
            .filter(|(hour, _)| {
                let tod = (*hour % 24) * 3600;
                tod >= start_s && tod < end_s
            })
            .map(|(_, b)| *b)
            .sum();
        inside as f64 / total as f64
    }

    /// Traffic carried by one link.
    pub fn link_traffic(&self, link: LinkId) -> LinkTraffic {
        self.per_link[link.index()]
    }

    /// Bytes that arrived at `node`.
    pub fn node_ingress(&self, node: NodeId) -> u64 {
        self.node_ingress[node.index()]
    }

    /// Bytes that left `node`.
    pub fn node_egress(&self, node: NodeId) -> u64 {
        self.node_egress[node.index()]
    }

    /// Total bytes across all links (each hop counted once).
    pub fn total_bytes(&self) -> u64 {
        self.per_link.iter().map(|t| t.bytes).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.per_link.iter().map(|t| t.messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Link;
    use crate::time::Duration;

    #[test]
    fn records_attribute_to_both_directions() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let l = topo
            .add_link(a, b, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        let mut m = TrafficMeter::for_topology(&topo);
        m.record(l, a, b, 100, SimTime::ZERO);
        m.record(l, b, a, 50, SimTime::from_secs(7_200));
        assert_eq!(m.link_traffic(l).bytes, 150);
        assert_eq!(m.link_traffic(l).messages, 2);
        assert_eq!(m.node_egress(a), 100);
        assert_eq!(m.node_ingress(a), 50);
        assert_eq!(m.node_egress(b), 50);
        assert_eq!(m.node_ingress(b), 100);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.total_messages(), 2);
        // Hourly buckets: 100 B in hour 0, 50 B in hour 2.
        assert_eq!(m.hourly_bytes().get(&0), Some(&100));
        assert_eq!(m.hourly_bytes().get(&2), Some(&50));
        assert!((m.window_share(0, 3_600) - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn window_share_wraps_by_time_of_day() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let l = topo
            .add_link(a, b, Link::new(Duration::from_millis(1), 1_000_000))
            .unwrap();
        let mut m = TrafficMeter::for_topology(&topo);
        // Day 1, 03:00 and day 2, 03:30: both inside a [02:00, 05:00) window.
        m.record(l, a, b, 10, SimTime::from_secs(3 * 3600));
        m.record(l, a, b, 30, SimTime::from_secs(86_400 + 3 * 3600 + 1800));
        // Day 1, 12:00: outside.
        m.record(l, a, b, 60, SimTime::from_secs(12 * 3600));
        assert!((m.window_share(2 * 3600, 5 * 3600) - 0.4).abs() < 1e-12);
        assert_eq!(m.window_share(0, 0), 0.0);
    }

    #[test]
    fn empty_meter_has_zero_window_share() {
        let topo = Topology::new();
        let m = TrafficMeter::for_topology(&topo);
        assert_eq!(m.window_share(0, 86_400), 0.0);
    }
}
