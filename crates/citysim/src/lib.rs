//! Discrete-event city/network simulator for the F2C reproduction.
//!
//! The paper's claims about the F2C architecture are comparative: less
//! upward traffic, lower access latency, fewer bytes over long links than a
//! centralized cloud deployment. Verifying those claims needs a network
//! substrate the experiments can run against; the paper used the real city,
//! we use this simulator.
//!
//! * [`time`] — microsecond simulation time and durations,
//! * [`event`] — deterministic event queue (FIFO tie-breaking),
//! * [`net`] — topology, links (latency + bandwidth), routing, per-link
//!   traffic metering and failure injection,
//! * [`metrics`] — counters and latency histograms,
//! * [`barcelona`] — the paper's deployment: 73 fog-1 nodes (city
//!   sections, ring-connected per district), 10 fog-2 nodes (districts,
//!   ring-connected as a metro backbone), 1 cloud (Fig. 6).
//!
//! # Quickstart
//!
//! ```
//! use citysim::barcelona::{self, BarcelonaTopology};
//! use citysim::time::SimTime;
//!
//! let mut city = BarcelonaTopology::build(&barcelona::LatencyProfile::default());
//! let fog1 = city.fog1_nodes()[0];
//! let cloud = city.cloud();
//! let delivery = city.network_mut().send(fog1, cloud, 1_500, SimTime::ZERO).unwrap();
//! assert!(delivery.arrival > SimTime::ZERO);
//! assert_eq!(delivery.hops, 2); // fog1 -> fog2 -> cloud
//! ```

pub mod access;
pub mod barcelona;
mod error;
pub mod event;
pub mod metrics;
pub mod net;
pub mod time;

pub use access::AccessTechnology;
pub use error::{Error, Result};
pub use event::EventQueue;
pub use metrics::{Counter, Histogram};
pub use net::{Delivery, Link, NetScratch, Network, NodeId, Topology};
pub use time::{Duration, SimTime};
