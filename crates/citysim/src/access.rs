//! Access-network technologies (§I/§III of the paper): sensors reach their
//! collection point over "wired Ethernet, or wireless WiFi, 3G/4G networks,
//! or other ad-hoc low-power wide-area networks (LPWAN)". The centralized
//! architecture hauls every byte over cellular to a remote data center; the
//! F2C architecture keeps the first hop on short-range links.
//!
//! Each technology carries typical first-hop latency, bandwidth, and a
//! transmit-energy cost — the parameters behind the latency profiles and
//! the per-day radio-energy comparison.

use crate::time::Duration;

/// A sensor access-network technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessTechnology {
    /// Wired Ethernet (lampposts, cabinets).
    Ethernet,
    /// Local WiFi to a nearby fog node.
    Wifi,
    /// 3G cellular to a remote collection point.
    Cellular3g,
    /// 4G/LTE cellular.
    Cellular4g,
    /// LPWAN (LoRa/Sigfox class): tiny bandwidth, tiny energy.
    Lpwan,
}

impl AccessTechnology {
    /// All technologies.
    pub const ALL: [AccessTechnology; 5] = [
        AccessTechnology::Ethernet,
        AccessTechnology::Wifi,
        AccessTechnology::Cellular3g,
        AccessTechnology::Cellular4g,
        AccessTechnology::Lpwan,
    ];

    /// Typical first-hop latency.
    pub fn latency(self) -> Duration {
        match self {
            AccessTechnology::Ethernet => Duration::from_micros(500),
            AccessTechnology::Wifi => Duration::from_millis(2),
            AccessTechnology::Cellular3g => Duration::from_millis(100),
            AccessTechnology::Cellular4g => Duration::from_millis(40),
            AccessTechnology::Lpwan => Duration::from_millis(1_000),
        }
    }

    /// Typical uplink bandwidth, bits per second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            AccessTechnology::Ethernet => 100_000_000,
            AccessTechnology::Wifi => 20_000_000,
            AccessTechnology::Cellular3g => 384_000,
            AccessTechnology::Cellular4g => 10_000_000,
            AccessTechnology::Lpwan => 5_000,
        }
    }

    /// Transmit energy per byte, microjoules. Order-of-magnitude values
    /// from the WSN literature: cellular radios cost ~100× more per byte
    /// than short-range links, which is why §IV.D's reduced transmission
    /// length also reduces device energy.
    pub fn energy_uj_per_byte(self) -> u64 {
        match self {
            AccessTechnology::Ethernet => 1,
            AccessTechnology::Wifi => 5,
            AccessTechnology::Cellular3g => 500,
            AccessTechnology::Cellular4g => 200,
            AccessTechnology::Lpwan => 50,
        }
    }

    /// Energy (joules) to transmit `bytes`.
    pub fn transmit_energy_j(self, bytes: u64) -> f64 {
        (bytes * self.energy_uj_per_byte()) as f64 / 1e6
    }

    /// Time to push `bytes` through the access hop (latency +
    /// serialization).
    pub fn transfer_time(self, bytes: u64) -> Duration {
        let micros = (u128::from(bytes) * 8 * 1_000_000 / u128::from(self.bandwidth_bps())) as u64;
        self.latency() + Duration::from_micros(micros)
    }
}

/// Daily radio energy (joules) for a deployment where every sensor sends
/// `daily_bytes` over `tech` — the device-side cost of an architecture.
pub fn fleet_daily_energy_j(tech: AccessTechnology, daily_bytes: u64) -> f64 {
    tech.transmit_energy_j(daily_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellular_is_the_expensive_way_to_move_a_byte() {
        let wifi = AccessTechnology::Wifi.energy_uj_per_byte();
        let g3 = AccessTechnology::Cellular3g.energy_uj_per_byte();
        let g4 = AccessTechnology::Cellular4g.energy_uj_per_byte();
        assert!(g3 > 10 * wifi);
        assert!(g4 > 10 * wifi);
        assert!(AccessTechnology::Ethernet.energy_uj_per_byte() <= wifi);
    }

    #[test]
    fn latency_ordering_is_sane() {
        assert!(AccessTechnology::Ethernet.latency() < AccessTechnology::Wifi.latency());
        assert!(AccessTechnology::Wifi.latency() < AccessTechnology::Cellular4g.latency());
        assert!(AccessTechnology::Cellular4g.latency() < AccessTechnology::Cellular3g.latency());
        assert!(AccessTechnology::Cellular3g.latency() < AccessTechnology::Lpwan.latency());
    }

    #[test]
    fn transfer_time_includes_serialization() {
        // 1 kB over LPWAN at 5 kbit/s: 1.6 s of air time + 1 s latency.
        let t = AccessTechnology::Lpwan.transfer_time(1_000);
        assert!(t >= Duration::from_millis(2_500), "got {t}");
        // The same payload over Ethernet is sub-millisecond.
        assert!(AccessTechnology::Ethernet.transfer_time(1_000) < Duration::from_millis(1));
    }

    #[test]
    fn f2c_saves_radio_energy_citywide() {
        // Centralized: the full 8.58 GB/day leaves the devices over 3G.
        // F2C: the same bytes only cross a WiFi hop to the fog node.
        let daily = 8_583_503_168u64;
        let centralized = fleet_daily_energy_j(AccessTechnology::Cellular3g, daily);
        let f2c = fleet_daily_energy_j(AccessTechnology::Wifi, daily);
        assert!(
            centralized / f2c > 50.0,
            "3G fleet energy {centralized:.0} J vs WiFi {f2c:.0} J"
        );
        // Absolute sanity: 8.58 GB × 500 µJ/B ≈ 4.3 MJ — about 1.2 kWh/day.
        assert!((centralized - 4.29e6).abs() / 4.29e6 < 0.01);
    }

    #[test]
    fn energy_scales_linearly_with_bytes() {
        let t = AccessTechnology::Cellular4g;
        assert_eq!(t.transmit_energy_j(0), 0.0);
        assert!((t.transmit_energy_j(2_000) - 2.0 * t.transmit_energy_j(1_000)).abs() < 1e-12);
    }
}
