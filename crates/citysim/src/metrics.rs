//! Counters and latency histograms.
//!
//! The experiments report traffic volumes (bytes moved per link per day) and
//! latency distributions (fog vs cloud access). [`Counter`] and
//! [`Histogram`] are the accumulation primitives; both are plain values so
//! simulations stay single-threaded-deterministic.

use std::fmt;

use crate::time::Duration;

/// A monotonically increasing u64 counter with a name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`.
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.value)
    }
}

/// A log-bucketed duration histogram (2 buckets per octave, 1 µs .. ~1.2 h).
///
/// Good to ±~19 % relative quantile error, which is far below the order-of-
/// magnitude contrasts the experiments assert on (edge RTT vs WAN RTT).
///
/// # Examples
///
/// ```
/// use citysim::{Histogram, Duration};
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) < Duration::from_millis(8));
/// assert!(h.max() >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// bucket i covers [lower_bound(i), lower_bound(i+1)).
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u128,
    min: Duration,
    max: Duration,
}

const BUCKETS_PER_OCTAVE: u32 = 2;

/// Number of log-spaced buckets every [`Histogram`] uses. Public so
/// exemplar stores can mirror the bucket layout slot-for-slot.
pub const NUM_BUCKETS: usize = 64;

/// The bucket a duration of `micros` lands in (shared with exemplar
/// stores, which keep one exemplar slot per histogram bucket).
pub fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let octave = 63 - micros.leading_zeros();
    let half = if micros >= (1u64 << octave) + (1u64 << octave.saturating_sub(1)) {
        1
    } else {
        0
    };
    ((octave * BUCKETS_PER_OCTAVE + half) as usize + 1).min(NUM_BUCKETS - 1)
}

/// Upper bound (inclusive reporting edge) of bucket `index`, microseconds.
pub fn bucket_upper_micros(index: usize) -> u64 {
    if index == 0 {
        return 1;
    }
    let i = (index - 1) as u32;
    let octave = i / BUCKETS_PER_OCTAVE;
    let half = i % BUCKETS_PER_OCTAVE;
    let base = 1u64 << octave;
    if half == 0 {
        base + base / 2
    } else {
        base * 2
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_micros: 0,
            min: Duration::from_micros(u64::MAX),
            max: Duration::ZERO,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        self.buckets[bucket_index(d.as_micros())] += 1;
        self.count += 1;
        self.sum_micros += u128::from(d.as_micros());
        if d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (ZERO when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / u128::from(self.count)) as u64)
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket upper bound).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The last bucket saturates: samples beyond its range all
                // land there, so its upper bound may sit *below* the true
                // extreme — report the exact max instead of underestimating.
                if i == NUM_BUCKETS - 1 {
                    return self.max;
                }
                return Duration::from_micros(bucket_upper_micros(i)).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p99={} max={} mean={}",
            self.count,
            self.min(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        assert_eq!(c.take(), 6);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let mut h = Histogram::new();
        // 99 samples at 1ms, 1 sample at 1s.
        for _ in 0..99 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_secs(1));
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(512) && p50 <= Duration::from_micros(2048));
        assert!(h.quantile(1.0) >= Duration::from_millis(900));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.mean(), Duration::from_micros(200));
    }

    #[test]
    fn min_max_tracked_exactly() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(7));
        h.record(Duration::from_secs(3));
        assert_eq!(h.min(), Duration::from_micros(7));
        assert_eq!(h.max(), Duration::from_secs(3));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(Duration::from_millis(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_millis(100));
        assert_eq!(a.min(), Duration::from_millis(1));
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut prev = 0;
        for us in [0u64, 1, 2, 3, 5, 10, 100, 1_000, 50_000, 10_000_000] {
            let b = bucket_index(us);
            assert!(b >= prev, "bucket index must not decrease");
            prev = b;
        }
    }

    #[test]
    fn zero_duration_lands_in_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Duration::ZERO.min(h.max()));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn bad_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn single_sample_every_quantile_is_exact() {
        // With one sample, min == max clamps every bucket upper bound to
        // the sample itself — including a sample beyond the last bucket's
        // range, where the saturation path must report the true max.
        for micros in [1u64, 1_023, 1_024, 1_536, 999_999, 7_200_000_000] {
            let mut h = Histogram::new();
            h.record(Duration::from_micros(micros));
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                assert_eq!(
                    h.quantile(q),
                    Duration::from_micros(micros),
                    "quantile({q}) of single {micros}us sample"
                );
            }
        }
    }

    #[test]
    fn bucket_boundary_samples_stay_within_relative_error() {
        // Samples sitting exactly on bucket edges (powers of two and the
        // 1.5x half-octave marks) must report quantiles within the
        // documented band: never below the sample's bucket, never more
        // than 1.5x above it.
        for base in [1u64 << 5, 1u64 << 10, 1u64 << 20] {
            for s in [base, base + base / 2] {
                let mut h = Histogram::new();
                h.record(Duration::from_micros(s));
                h.record(Duration::from_micros(s * 4));
                let p50 = h.quantile(0.5).as_micros();
                assert!(
                    p50 >= s && p50 <= s * 3 / 2,
                    "p50 {p50} out of band for boundary sample {s}"
                );
            }
        }
    }

    #[test]
    fn saturated_tail_reports_true_max() {
        // Two samples beyond the last bucket's upper bound: before the
        // saturation guard, p99 reported the bucket bound (~54 min),
        // silently shrinking a two-hour extreme.
        let mut h = Histogram::new();
        h.record(Duration::from_secs(3_600));
        h.record(Duration::from_secs(7_200));
        assert_eq!(h.quantile(0.99), Duration::from_secs(7_200));
        assert_eq!(h.quantile(1.0), Duration::from_secs(7_200));
    }

    #[test]
    fn merge_is_equivalent_to_recording_the_union() {
        // Bucket counts add, so a merged histogram must agree with one
        // that saw every sample directly — exactly, at every quantile.
        let xs = [3u64, 900, 1_024, 1_536, 50_000];
        let ys = [1u64, 7, 2_048, 10_000_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &x in &xs {
            a.record(Duration::from_micros(x));
            union.record(Duration::from_micros(x));
        }
        for &y in &ys {
            b.record(Duration::from_micros(y));
            union.record(Duration::from_micros(y));
        }
        a.merge(&b);
        assert_eq!(a, union);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), union.quantile(q), "quantile({q})");
        }
    }

    #[test]
    fn merge_with_empty_changes_nothing() {
        let mut a = Histogram::new();
        a.record(Duration::from_millis(5));
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        // And merging *into* an empty histogram adopts min/max intact.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.min(), Duration::from_millis(5));
        assert_eq!(empty.max(), Duration::from_millis(5));
    }
}
