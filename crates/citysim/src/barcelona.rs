//! The paper's deployment topology (Fig. 6): Barcelona as 73 fog-1 nodes
//! (one per city section / *barri*), 10 fog-2 nodes (one per district), and
//! one cloud data center.
//!
//! Fog-1 nodes in the same district are additionally ring-connected so the
//! §IV.C "neighbor fog node" access option exists in the graph.

use crate::net::{Link, Network, NodeId, Topology};
use crate::time::Duration;

/// The ten districts of Barcelona with their section (*barri*) counts —
/// 73 sections in total, matching §V.B.
pub const DISTRICTS: [(&str, usize); 10] = [
    ("Ciutat Vella", 4),
    ("Eixample", 6),
    ("Sants-Montjuic", 8),
    ("Les Corts", 3),
    ("Sarria-Sant Gervasi", 6),
    ("Gracia", 5),
    ("Horta-Guinardo", 11),
    ("Nou Barris", 13),
    ("Sant Andreu", 7),
    ("Sant Marti", 10),
];

/// Link parameters for each tier of the hierarchy.
///
/// Defaults model a metro deployment: millisecond-scale edge links, a WAN
/// hop to the cloud. The absolute values are configurable; the experiments
/// only rely on the edge ≪ WAN ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Sensor/device to its fog-1 node (used by access-latency models; the
    /// sensor population is not materialized as graph nodes).
    pub sensor_to_fog1: Duration,
    /// Fog-1 to its fog-2 parent: (latency, bandwidth bps).
    pub fog1_to_fog2: (Duration, u64),
    /// Fog-2 to the cloud: (latency, bandwidth bps).
    pub fog2_to_cloud: (Duration, u64),
    /// Fog-1 to a neighboring fog-1 in the same district.
    pub fog1_neighbor: (Duration, u64),
    /// Fog-2 to an adjacent fog-2 on the district metro ring. These
    /// lateral links are what make city-wide scatter-gather competitive
    /// with a cloud read: a fan-out leg crosses metro hops instead of the
    /// WAN twice.
    pub fog2_sibling: (Duration, u64),
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self {
            sensor_to_fog1: Duration::from_millis(2),
            fog1_to_fog2: (Duration::from_millis(5), 1_000_000_000),
            fog2_to_cloud: (Duration::from_millis(30), 1_000_000_000),
            fog1_neighbor: (Duration::from_millis(3), 1_000_000_000),
            fog2_sibling: (Duration::from_millis(4), 1_000_000_000),
        }
    }
}

/// The built Barcelona F2C topology with layer bookkeeping.
#[derive(Debug)]
pub struct BarcelonaTopology {
    network: Network,
    cloud: NodeId,
    fog2: Vec<NodeId>,
    fog1: Vec<NodeId>,
    /// District index (0..10) of each fog-1 node.
    fog1_district: Vec<usize>,
    profile: LatencyProfile,
}

impl BarcelonaTopology {
    /// Builds the 73 + 10 + 1 node hierarchy with `profile` link parameters.
    pub fn build(profile: &LatencyProfile) -> Self {
        let mut topo = Topology::new();
        let cloud = topo.add_node("cloud");
        let mut fog2 = Vec::with_capacity(DISTRICTS.len());
        let mut fog1 = Vec::new();
        let mut fog1_district = Vec::new();

        for (d_idx, (district, sections)) in DISTRICTS.iter().enumerate() {
            let f2 = topo.add_node(format!("fog2/{district}"));
            topo.add_link(
                f2,
                cloud,
                Link::new(profile.fog2_to_cloud.0, profile.fog2_to_cloud.1),
            )
            .expect("fresh nodes");
            fog2.push(f2);

            let mut district_fog1 = Vec::with_capacity(*sections);
            for s in 0..*sections {
                let f1 = topo.add_node(format!("fog1/{district}/section-{s}"));
                topo.add_link(
                    f1,
                    f2,
                    Link::new(profile.fog1_to_fog2.0, profile.fog1_to_fog2.1),
                )
                .expect("fresh nodes");
                district_fog1.push(f1);
                fog1.push(f1);
                fog1_district.push(d_idx);
            }
            // Ring-connect sections within the district (neighbor access).
            if district_fog1.len() >= 2 {
                for w in 0..district_fog1.len() {
                    let a = district_fog1[w];
                    let b = district_fog1[(w + 1) % district_fog1.len()];
                    // A 2-section ring would duplicate the single pair.
                    if district_fog1.len() == 2 && w == 1 {
                        break;
                    }
                    topo.add_link(
                        a,
                        b,
                        Link::new(profile.fog1_neighbor.0, profile.fog1_neighbor.1),
                    )
                    .expect("ring edges are fresh");
                }
            }
        }

        // Ring-connect the district fog-2 nodes (the metro backbone):
        // scatter-gather legs and sibling-district reads cross these
        // lateral links instead of bouncing off the cloud.
        for d in 0..fog2.len() {
            let a = fog2[d];
            let b = fog2[(d + 1) % fog2.len()];
            topo.add_link(
                a,
                b,
                Link::new(profile.fog2_sibling.0, profile.fog2_sibling.1),
            )
            .expect("ring edges are fresh");
        }

        Self {
            network: Network::new(topo),
            cloud,
            fog2,
            fog1,
            fog1_district,
            profile: *profile,
        }
    }

    /// The cloud node.
    pub fn cloud(&self) -> NodeId {
        self.cloud
    }

    /// The 10 fog-2 (district) nodes.
    pub fn fog2_nodes(&self) -> &[NodeId] {
        &self.fog2
    }

    /// The 73 fog-1 (section) nodes.
    pub fn fog1_nodes(&self) -> &[NodeId] {
        &self.fog1
    }

    /// District index (0..10) of a fog-1 node (by position in
    /// [`Self::fog1_nodes`]).
    pub fn district_of(&self, fog1_index: usize) -> usize {
        self.fog1_district[fog1_index]
    }

    /// The fog-2 parent of a fog-1 node (by position in
    /// [`Self::fog1_nodes`]).
    pub fn parent_of(&self, fog1_index: usize) -> NodeId {
        self.fog2[self.fog1_district[fog1_index]]
    }

    /// Fog-1 node positions belonging to district `d`.
    pub fn fog1_in_district(&self, d: usize) -> Vec<usize> {
        (0..self.fog1.len())
            .filter(|&i| self.fog1_district[i] == d)
            .collect()
    }

    /// The link profile the topology was built with.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// The underlying network (metering, sending).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn node_counts_match_the_paper() {
        let city = BarcelonaTopology::build(&LatencyProfile::default());
        assert_eq!(city.fog1_nodes().len(), 73);
        assert_eq!(city.fog2_nodes().len(), 10);
        let total: usize = DISTRICTS.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 73);
    }

    #[test]
    fn every_fog1_routes_to_cloud_in_two_hops() {
        let mut city = BarcelonaTopology::build(&LatencyProfile::default());
        let cloud = city.cloud();
        for i in 0..city.fog1_nodes().len() {
            let f1 = city.fog1_nodes()[i];
            let d = city
                .network_mut()
                .send(f1, cloud, 100, SimTime::ZERO)
                .unwrap();
            assert_eq!(d.hops, 2, "fog1 #{i} should reach cloud via its fog2");
        }
    }

    #[test]
    fn fog1_to_parent_is_one_hop() {
        let mut city = BarcelonaTopology::build(&LatencyProfile::default());
        for i in 0..city.fog1_nodes().len() {
            let f1 = city.fog1_nodes()[i];
            let f2 = city.parent_of(i);
            let d = city.network_mut().send(f1, f2, 10, SimTime::ZERO).unwrap();
            assert_eq!(d.hops, 1);
        }
    }

    #[test]
    fn neighbors_in_district_are_close() {
        let mut city = BarcelonaTopology::build(&LatencyProfile::default());
        // Nou Barris has 13 sections; adjacent ring members are 1 hop apart.
        let nb = city.fog1_in_district(7);
        assert_eq!(nb.len(), 13);
        let a = city.fog1_nodes()[nb[0]];
        let b = city.fog1_nodes()[nb[1]];
        let d = city.network_mut().send(a, b, 10, SimTime::ZERO).unwrap();
        assert_eq!(d.hops, 1);
        assert_eq!(d.path_latency, Duration::from_millis(3));
    }

    #[test]
    fn fog_access_is_faster_than_cloud_access() {
        let mut city = BarcelonaTopology::build(&LatencyProfile::default());
        let f1 = city.fog1_nodes()[0];
        let f2 = city.parent_of(0);
        let cloud = city.cloud();
        let to_fog2 = city
            .network_mut()
            .send(f1, f2, 1000, SimTime::ZERO)
            .unwrap();
        let to_cloud = city
            .network_mut()
            .send(f1, cloud, 1000, SimTime::ZERO)
            .unwrap();
        assert!(to_fog2.path_latency < to_cloud.path_latency);
    }

    #[test]
    fn district_bookkeeping_is_consistent() {
        let city = BarcelonaTopology::build(&LatencyProfile::default());
        let mut seen = 0;
        for (d, district) in DISTRICTS.iter().enumerate() {
            let members = city.fog1_in_district(d);
            assert_eq!(members.len(), district.1);
            for m in members {
                assert_eq!(city.district_of(m), d);
                assert_eq!(city.parent_of(m), city.fog2_nodes()[d]);
                seen += 1;
            }
        }
        assert_eq!(seen, 73);
    }

    #[test]
    fn fog2_ring_keeps_sibling_districts_off_the_wan() {
        let mut city = BarcelonaTopology::build(&LatencyProfile::default());
        // Adjacent districts: one metro hop, never via the cloud.
        let a = city.fog2_nodes()[0];
        let b = city.fog2_nodes()[1];
        let d = city.network_mut().send(a, b, 10, SimTime::ZERO).unwrap();
        assert_eq!(d.hops, 1);
        assert_eq!(d.path_latency, Duration::from_millis(4));
        // Antipodal districts: 5 ring hops (20 ms) still beat the
        // 60 ms cloud bounce.
        let far = city.fog2_nodes()[5];
        let d = city.network_mut().send(a, far, 10, SimTime::ZERO).unwrap();
        assert_eq!(d.hops, 5);
        assert_eq!(d.path_latency, Duration::from_millis(20));
    }

    #[test]
    fn two_section_district_has_no_duplicate_ring_edge() {
        // Not in the real layout, but the builder must handle it: construct
        // a direct micro-topology through the same code path by checking the
        // real city builds without DuplicateLink panics (ring logic).
        let _ = BarcelonaTopology::build(&LatencyProfile::default());
    }
}
