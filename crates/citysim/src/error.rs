use std::fmt;

use crate::net::NodeId;
use crate::time::SimTime;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from topology construction and message delivery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A node id referenced a node that does not exist.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// No route exists between two nodes (partition or missing links).
    NoRoute {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// A link needed by a transfer was down at send time.
    LinkDown {
        /// Link endpoint a.
        a: NodeId,
        /// Link endpoint b.
        b: NodeId,
        /// When the transfer was attempted.
        at: SimTime,
    },
    /// The message was dropped by injected packet loss.
    MessageLost {
        /// Link endpoint a.
        a: NodeId,
        /// Link endpoint b.
        b: NodeId,
    },
    /// A link was declared twice between the same pair.
    DuplicateLink {
        /// Link endpoint a.
        a: NodeId,
        /// Link endpoint b.
        b: NodeId,
    },
    /// A link connects a node to itself.
    SelfLink {
        /// The node.
        node: NodeId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode { node } => write!(f, "unknown node {node}"),
            Error::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            Error::LinkDown { a, b, at } => {
                write!(f, "link {a}<->{b} down at {at}")
            }
            Error::MessageLost { a, b } => {
                write!(f, "message lost on link {a}<->{b}")
            }
            Error::DuplicateLink { a, b } => {
                write!(f, "duplicate link {a}<->{b}")
            }
            Error::SelfLink { node } => write!(f, "self-link on node {node}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::NoRoute {
            from: NodeId::from_raw(1),
            to: NodeId::from_raw(9),
        };
        let s = e.to_string();
        assert!(s.contains("n1") && s.contains("n9"));
    }
}
