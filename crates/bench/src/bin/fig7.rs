//! Experiment E2: regenerates **Fig. 7 (a)–(e)** — per-category daily
//! volume raw → after redundant-data elimination → after compression —
//! twice: once with the paper's Zip ratio, once with the measured
//! `f2c-compress` ratio, and cross-validates against the event simulation.
//!
//! Run with `cargo run --release -p f2c-bench --bin fig7`.

use f2c_bench::measure_compression_ratios;
use f2c_core::report::{gb, render_fig7};
use f2c_core::runtime::{simulate, SimConfig};
use f2c_core::traffic::TrafficModel;

fn main() {
    // (a) Analytic, paper's Zip ratio.
    let paper = TrafficModel::paper();
    println!(
        "== E2: Fig. 7 — analytic, paper Zip ratio ({:.1}% reduction) ==\n",
        (1.0 - paper.compression_ratio()) * 100.0
    );
    println!("{}", render_fig7(&paper.fig7_rows()));

    // (b) Analytic, measured ratio from this repo's codec.
    let measured = measure_compression_ratios(2017, 120, 120);
    let ours = TrafficModel::paper().with_compression_ratio(measured.overall);
    println!(
        "== E2: Fig. 7 — analytic, measured f2c-compress ratio ({:.1}% reduction) ==\n",
        measured.overall_reduction_percent()
    );
    println!("{}", render_fig7(&ours.fig7_rows()));

    // (c) Event-driven simulation at 1/1000 scale, scaled back up.
    println!("== E2: Fig. 7 — event simulation (scale 1/1000, scaled back) ==\n");
    let report = simulate(SimConfig::paper_scaled()).expect("simulation runs");
    println!(
        "{:<22} {:>12} {:>14} {:>18}",
        "Category", "Raw", "After dedup", "Compressed (wire)"
    );
    println!("{}", "-".repeat(70));
    for (category, t) in &report.per_category {
        println!(
            "{:<22} {:>12} {:>14} {:>18}",
            category.to_string(),
            gb(report.scaled_up(t.raw)),
            gb(report.scaled_up(t.after_dedup)),
            gb(report.scaled_up(t.compressed)),
        );
    }
    println!(
        "\nsim dedup rate {:.1}% | sim compression ratio {:.3} | {} readings simulated",
        report.dedup_rate() * 100.0,
        report.compression_ratio(),
        report.generated_readings
    );

    // Shape assertions: who wins and by what class of factor.
    for row in paper.fig7_rows() {
        let sim = &report.per_category[&row.category];
        let raw_err = (report.scaled_up(sim.raw) as f64 - row.raw as f64).abs() / row.raw as f64;
        assert!(
            raw_err < 0.15,
            "{}: raw diverged {raw_err:.2}",
            row.category
        );
    }
    println!("\nAll per-category raw volumes within 15% of Table I. SHAPE OK");

    // Diffable JSON artifact (analytic rows, both ratios). Hand-rendered:
    // the build environment vendors serde as a derive-only shim, and the
    // payload is flat enough that a formatter dependency buys nothing.
    let rows_json = |rows: &[f2c_core::traffic::Fig7Row]| -> String {
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"category\": \"{}\", \"raw\": {}, \"after_dedup\": {}, \
                     \"after_dedup_and_compression\": {}, \"compressed_raw\": {}}}",
                    r.category,
                    r.raw,
                    r.after_dedup,
                    r.after_dedup_and_compression,
                    r.compressed_raw
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let artifact = format!(
        "{{\n  \"experiment\": \"E2-fig7\",\n  \"paper_ratio\": {},\n  \
         \"measured_ratio\": {},\n  \"rows_paper_ratio\": [\n{}\n  ],\n  \
         \"rows_measured_ratio\": [\n{}\n  ]\n}}\n",
        paper.compression_ratio(),
        measured.overall,
        rows_json(&paper.fig7_rows()),
        rows_json(&ours.fig7_rows()),
    );
    let path = "fig7.json";
    std::fs::write(path, artifact).expect("artifact writable");
    println!("wrote {path}");
}
