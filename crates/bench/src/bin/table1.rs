//! Experiment E1 + E5: regenerates **Table I** (the redundant-data
//! aggregation model) and the §II "≈8 GB/day" estimate.
//!
//! Run with `cargo run --release -p f2c-bench --bin table1`.
//! Exports a schema-versioned `BENCH_table1.json` (override with
//! `BENCH_OUT`) that CI diffs against `bench/baseline_table1.json` —
//! the checkpoints are closed-form arithmetic, so the gate tolerates
//! zero drift.

use f2c_bench::export;
use f2c_core::report::{render_table1, thousands};
use f2c_core::traffic::TrafficModel;
use f2c_obs::Json;

fn main() {
    let model = TrafficModel::paper();
    let rows = model.table1_rows();
    let totals = model.table1_totals();

    println!("== E1: Table I — redundant data aggregation model ==\n");
    println!("{}", render_table1(&rows, &totals));

    println!("\n== Paper checkpoints ==");
    let checks = [
        ("total sensors", totals.sensors, 1_005_019u64),
        (
            "wave bytes at centralized cloud",
            totals.wave_cloud_model,
            54_388_158,
        ),
        (
            "wave bytes at fog2 / F2C cloud",
            totals.wave_fog2,
            28_165_079,
        ),
        (
            "daily bytes generated (E5: ~8 GB)",
            totals.daily_fog1,
            8_583_503_168,
        ),
        (
            "daily bytes at F2C cloud",
            totals.daily_cloud_f2c,
            5_036_071_584,
        ),
    ];
    let mut all_ok = true;
    for (name, got, expected) in checks {
        let ok = got == expected;
        all_ok &= ok;
        println!(
            "  {:<38} {:>16}  (paper {:>16})  {}",
            name,
            thousands(got),
            thousands(expected),
            if ok { "MATCH" } else { "MISMATCH" }
        );
    }
    println!(
        "\nF2C reduces daily cloud ingress by {} ({}%).",
        thousands(model.daily_dedup_savings()),
        (model.daily_dedup_savings() as f64 / totals.daily_fog1 as f64 * 100.0).round()
    );
    assert!(all_ok, "Table I regeneration diverged from the paper");

    // Export the checkpoint set as the second gated bench document. The
    // values are closed-form, so `table1_budget_rules` holds them to the
    // baseline with zero tolerance — any drift is a model regression.
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_table1.json".to_string());
    let mut doc = Json::obj();
    doc.set("schema_version", export::num(export::SCHEMA_VERSION));
    doc.set("bench", Json::Str("table1".to_string()));
    let mut totals_j = Json::obj();
    totals_j.set("sensors", export::num(totals.sensors));
    totals_j.set("wave_cloud_model", export::num(totals.wave_cloud_model));
    totals_j.set("wave_fog2", export::num(totals.wave_fog2));
    totals_j.set("daily_fog1", export::num(totals.daily_fog1));
    totals_j.set("daily_cloud_f2c", export::num(totals.daily_cloud_f2c));
    totals_j.set(
        "daily_dedup_savings",
        export::num(model.daily_dedup_savings()),
    );
    doc.set("totals", totals_j);
    std::fs::write(&out_path, doc.to_pretty()).expect("bench export writes");
    println!(
        "\nexported Table-I checkpoints -> {out_path} ({} gated metrics; \
         diff with `cargo run -p f2c-bench --bin perf_gate -- \
         bench/baseline_table1.json {out_path}`)",
        export::table1_budget_rules().len()
    );
}
