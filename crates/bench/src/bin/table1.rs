//! Experiment E1 + E5: regenerates **Table I** (the redundant-data
//! aggregation model) and the §II "≈8 GB/day" estimate.
//!
//! Run with `cargo run --release -p f2c-bench --bin table1`.

use f2c_core::report::{render_table1, thousands};
use f2c_core::traffic::TrafficModel;

fn main() {
    let model = TrafficModel::paper();
    let rows = model.table1_rows();
    let totals = model.table1_totals();

    println!("== E1: Table I — redundant data aggregation model ==\n");
    println!("{}", render_table1(&rows, &totals));

    println!("\n== Paper checkpoints ==");
    let checks = [
        ("total sensors", totals.sensors, 1_005_019u64),
        (
            "wave bytes at centralized cloud",
            totals.wave_cloud_model,
            54_388_158,
        ),
        (
            "wave bytes at fog2 / F2C cloud",
            totals.wave_fog2,
            28_165_079,
        ),
        (
            "daily bytes generated (E5: ~8 GB)",
            totals.daily_fog1,
            8_583_503_168,
        ),
        (
            "daily bytes at F2C cloud",
            totals.daily_cloud_f2c,
            5_036_071_584,
        ),
    ];
    let mut all_ok = true;
    for (name, got, expected) in checks {
        let ok = got == expected;
        all_ok &= ok;
        println!(
            "  {:<38} {:>16}  (paper {:>16})  {}",
            name,
            thousands(got),
            thousands(expected),
            if ok { "MATCH" } else { "MISMATCH" }
        );
    }
    println!(
        "\nF2C reduces daily cloud ingress by {} ({}%).",
        thousands(model.daily_dedup_savings()),
        (model.daily_dedup_savings() as f64 / totals.daily_fog1 as f64 * 100.0).round()
    );
    assert!(all_ok, "Table I regeneration diverged from the paper");
}
