//! Experiment E7: the §IV.C cost model — neighbor-fog vs parent-layer data
//! access, and placement decisions for the paper's motivating services.
//!
//! Run with `cargo run --release -p f2c-bench --bin placement`.

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;
use f2c_core::cost::{AccessCostModel, AccessOption};
use f2c_core::placement::{AreaSpan, PlacementEngine, ServiceSpec};
use scc_dlc::AgeClass;

fn main() {
    let profile = LatencyProfile::default();
    let cost = AccessCostModel::new(profile);

    println!("== E7a: neighbor vs parent access cost (request completion) ==\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "bytes", "neighbor x1", "neighbor x3", "parent", "cloud"
    );
    for bytes in [1_000u64, 100_000, 10_000_000] {
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>14}",
            bytes,
            cost.cost(AccessOption::Neighbor { hops: 1 }, bytes)
                .to_string(),
            cost.cost(AccessOption::Neighbor { hops: 3 }, bytes)
                .to_string(),
            cost.cost(AccessOption::Parent, bytes).to_string(),
            cost.cost(AccessOption::Cloud, bytes).to_string(),
        );
    }
    println!(
        "\ncrossover: neighbor loses to parent from {} ring hops (1 KB payloads)",
        cost.neighbor_parent_crossover(1_000)
    );

    println!("\n== E7b: placement decisions (§IV.C) ==\n");
    let engine = PlacementEngine::new(profile);
    let services = [
        (
            "traffic-light control (critical RT)",
            ServiceSpec::realtime_critical(Duration::from_millis(10)),
        ),
        (
            "district noise dashboard",
            ServiceSpec {
                compute_units: 50,
                data_span: AreaSpan::District,
                data_age: AgeClass::Recent,
                latency_bound: Some(Duration::from_millis(100)),
                access_bytes: 50_000,
            },
        ),
        ("city-wide ML over history", ServiceSpec::deep_analytics()),
    ];
    for (name, spec) in services {
        match engine.place(&spec) {
            Ok(p) => println!(
                "  {:<38} -> {:<12} (access latency {})",
                name,
                p.layer.to_string(),
                p.access_latency
            ),
            Err(e) => println!("  {:<38} -> UNPLACEABLE ({e})", name),
        }
    }
    println!("\nCritical RT at fog-1, district scope at fog-2, deep analytics at cloud. SHAPE OK");
}
