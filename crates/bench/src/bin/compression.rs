//! Experiment E3: the §V.B compression statistic — the paper zipped
//! 1,360,043,206 bytes of fog-1 data down to 295,428,463 bytes (≈78 %
//! reduction). We reproduce the *ratio class* with `f2c-compress` on
//! deduped Sentilo-format observation batches, per category.
//!
//! Run with `cargo run --release -p f2c-bench --bin compression`.

use f2c_bench::{measure_compression_ratios, pct};
use f2c_core::traffic::{PAPER_COMPRESSED_BYTES, PAPER_ORIGINAL_BYTES};

fn main() {
    let paper_ratio = PAPER_COMPRESSED_BYTES as f64 / PAPER_ORIGINAL_BYTES as f64;
    println!(
        "== E3: compression ratio (paper: {} B -> {} B, {} reduction) ==\n",
        PAPER_ORIGINAL_BYTES,
        PAPER_COMPRESSED_BYTES,
        pct(1.0 - paper_ratio)
    );

    let r = measure_compression_ratios(2017, 200, 200);
    println!("{:<22} {:>16} {:>16}", "Category", "ratio", "reduction");
    println!("{}", "-".repeat(56));
    for (category, ratio) in &r.per_category {
        println!(
            "{:<22} {:>16.4} {:>16}",
            category.to_string(),
            ratio,
            pct(1.0 - ratio)
        );
    }
    println!("{}", "-".repeat(56));
    println!(
        "{:<22} {:>16.4} {:>16}   ({} B -> {} B)",
        "OVERALL",
        r.overall,
        pct(1.0 - r.overall),
        r.original_bytes,
        r.compressed_bytes
    );
    println!(
        "\npaper reduction {} | measured reduction {} | delta {:.1} points",
        pct(1.0 - paper_ratio),
        pct(1.0 - r.overall),
        ((1.0 - r.overall) - (1.0 - paper_ratio)).abs() * 100.0
    );
    assert!(
        r.overall_reduction_percent() > 70.0,
        "measured reduction fell out of the zip class"
    );
    println!("Measured reduction is in the paper's zip class (>70%). SHAPE OK");
}
