//! Experiment E6: ablations of the design choices §IV.B/§IV.D call out —
//! flush period vs per-flush batch size, off-peak scheduling, and the
//! "collection frequency can be increased at no additional \[WAN\] cost"
//! claim.
//!
//! Run with `cargo run --release -p f2c-bench --bin ablation`.

use f2c_core::baseline::{simulate_baseline, BaselineConfig};
use f2c_core::policy::FlushPolicy;
use f2c_core::report::thousands;
use f2c_core::runtime::{flush_period_ablation, simulate, SimConfig};

fn main() {
    // (a) Flush period: longer periods accumulate bigger (better-
    //     compressing) batches but delay upstream freshness.
    println!("== E6a: fog-1 flush period vs per-flush uplink bytes ==\n");
    println!("{:>12} {:>22}", "period (s)", "avg bytes per flush");
    let rows =
        flush_period_ablation(&[300, 900, 1800, 3600], 10_000).expect("ablation simulations run");
    let mut prev = 0u64;
    for (period, bytes) in &rows {
        println!("{:>12} {:>22}", period, thousands(*bytes));
        assert!(*bytes >= prev, "longer period must not shrink batches");
        prev = *bytes;
    }

    // (b) Off-peak scheduling: the same bytes ship, but inside the window.
    println!("\n== E6b: off-peak flush scheduling ==\n");
    let mut on_peak = SimConfig::paper_scaled();
    on_peak.scale = 10_000;
    on_peak.horizon_s = 86_400;
    let mut off_peak = on_peak.clone();
    off_peak.fog1_flush = FlushPolicy {
        off_peak_window: Some((7_200, 21_600)), // 02:00–06:00
        ..FlushPolicy::paper_fog1()
    };
    let a = simulate(on_peak).expect("on-peak run");
    let b = simulate(off_peak).expect("off-peak run");
    println!(
        "  anytime flushes : fog1 uplink {} B (acct)",
        thousands(a.fog1_uplink_acct_bytes)
    );
    println!(
        "  off-peak window : fog1 uplink {} B (acct)",
        thousands(b.fog1_uplink_acct_bytes)
    );
    let err = (a.fog1_uplink_acct_bytes as f64 - b.fog1_uplink_acct_bytes as f64).abs()
        / a.fog1_uplink_acct_bytes as f64;
    assert!(
        err < 0.02,
        "off-peak scheduling must move bytes in time, not change their volume ({err:.3})"
    );
    // Steady-state window share, without the end-of-horizon drain and with
    // both tiers deferring into the window (two simulated days).
    let mut steady_any = SimConfig::paper_scaled();
    steady_any.scale = 10_000;
    steady_any.horizon_s = 2 * 86_400;
    steady_any.drain_at_end = false;
    let mut steady_off = steady_any.clone();
    steady_off.fog1_flush = FlushPolicy {
        off_peak_window: Some((7_200, 21_600)),
        ..FlushPolicy::paper_fog1()
    };
    steady_off.fog2_flush = FlushPolicy {
        off_peak_window: Some((7_200, 25_200)), // relay window, one hour wider
        ..FlushPolicy::plain(3600)
    };
    let sa = simulate(steady_any).expect("steady anytime run");
    let so = simulate(steady_off).expect("steady off-peak run");
    let share_anytime = sa.window_share(7_200, 25_200);
    let share_offpeak = so.window_share(7_200, 25_200);
    println!(
        "  steady-state window share [02:00-07:00): anytime {:.0}%, off-peak {:.0}%",
        share_anytime * 100.0,
        share_offpeak * 100.0
    );
    assert!(
        share_offpeak > 0.9 && share_offpeak > share_anytime + 0.4,
        "off-peak run must concentrate traffic in the window ({share_offpeak:.2} vs {share_anytime:.2})"
    );
    println!("  -> same volume, shifted into the window. SHAPE OK");

    // (c) §IV.D: doubling the sensor collection frequency doubles the
    //     *centralized* WAN bill, while under F2C the extra readings are
    //     mostly redundant repeats that dedup absorbs at fog 1.
    println!("\n== E6c: collection-frequency increase ==\n");
    let mut base_cfg = BaselineConfig::paper_scaled();
    base_cfg.scale = 10_000;
    base_cfg.horizon_s = 6 * 3600;
    let base1 = simulate_baseline(base_cfg.clone()).expect("baseline x1");
    base_cfg.frequency_factor = 2.0;
    let base2 = simulate_baseline(base_cfg).expect("baseline x2");
    let centralized_growth =
        base2.cloud_ingress_acct_bytes as f64 / base1.cloud_ingress_acct_bytes as f64;
    println!(
        "  centralized: x1 {} B -> x2 {} B  ({:.2}x WAN growth)",
        thousands(base1.cloud_ingress_acct_bytes),
        thousands(base2.cloud_ingress_acct_bytes),
        centralized_growth
    );
    assert!(
        centralized_growth > 1.8,
        "centralized WAN must scale with frequency"
    );

    // F2C side, measured: time-correlated phenomena (change as a Poisson
    // process) sampled faster repeat more, and fog-1 dedup absorbs the
    // repeats. Uplink growth stays well below the sampling growth.
    let f2c_uplink = |interval_s: u64| -> u64 {
        use f2c_aggregate::RedundancyFilter;
        use scc_sensors::{SensorId, SensorType, TimeCorrelatedStream};
        let mut filter = RedundancyFilter::new();
        let mut kept = 0u64;
        for sensor in 0..100u32 {
            let id = SensorId::new(SensorType::Temperature, sensor);
            let mut stream = TimeCorrelatedStream::calibrated(id, 2017, 900.0);
            let mut t = 0u64;
            while t < 6 * 3600 {
                if filter.admit(&stream.next_reading(t)) {
                    kept += 1;
                }
                t += interval_s;
            }
        }
        kept
    };
    let up1 = f2c_uplink(900);
    let up2 = f2c_uplink(450);
    let f2c_growth = up2 as f64 / up1 as f64;
    println!(
        "  F2C:         x1 {} msgs -> x2 {} msgs after fog-1 dedup ({:.2}x uplink growth)",
        thousands(up1),
        thousands(up2),
        f2c_growth
    );
    assert!(
        f2c_growth < 1.35,
        "F2C uplink should grow far sublinearly ({f2c_growth:.2}x)"
    );
    println!(
        "  -> 2x sampling costs the centralized WAN {centralized_growth:.2}x but the F2C uplink only {f2c_growth:.2}x."
    );
    println!("\nAll ablations consistent with §IV.B/§IV.D. SHAPE OK");
}
