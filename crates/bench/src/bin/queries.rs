//! Experiment E7: consumer query serving over the F2C hierarchy — a
//! seeded ≥1M-request closed-loop workload (dashboard / analytics /
//! real-time / city-wide mix under a diurnal load curve) against a
//! warmed Barcelona deployment, reporting per-layer and per-class
//! latency percentiles, per-class shed rates and SLO attainment,
//! scatter-gather percentiles and fan-out-vs-cloud win rates, cache hit
//! rates and admission sheds; then a flash-crowd scenario proving the
//! QoS promise (an analytics burst sheds analytics, never a real-time
//! read); a warm-vs-cold serving microbenchmark; and a chaos scenario
//! (seeded crash windows + flush-shipment loss/corruption under live
//! load) proving faults degrade availability, never correctness, and
//! that sketch anti-entropy heals every punched hole after the storm.
//!
//! Run with `cargo run --release -p f2c-bench --bin queries`.
//! Set `E7_REQUESTS` (e.g. `E7_REQUESTS=50000`) to shrink the main run
//! for CI smoke coverage.

use std::time::Instant;

use citysim::net::FailurePlan;
use f2c_bench::export;
use f2c_core::runtime::populate_city;
use f2c_core::{ChaosSite, F2cCity, Layer, Parallelism};
use f2c_obs::Json;
use f2c_query::parallel;
use f2c_query::workload::{self, DiurnalCurve, FlashCrowd, Mix, ServiceClass, WorkloadConfig};
use f2c_query::{
    EngineConfig, LayerCaps, Outcome, Query, QueryEngine, QueryKind, Scope, Selector, TimeWindow,
    WorkloadReport,
};
use scc_sensors::Category;

const WARMUP_SCALE: u64 = 2_000;
const WARMUP_HORIZON_S: u64 = 4 * 3_600;
const DEFAULT_REQUESTS: u64 = 1_000_000;

fn requested_load() -> u64 {
    std::env::var("E7_REQUESTS")
        .ok()
        .map(|s| {
            s.parse()
                .expect("E7_REQUESTS must be a positive request count")
        })
        .unwrap_or(DEFAULT_REQUESTS)
}

fn print_class_table(report: &WorkloadReport) {
    println!(
        "\n{:<10} {:>8} {:>9} {:>6} {:>8} {:>8} {:>7} {:>6} {:>12} {:>12}",
        "class", "issued", "answered", "shed", "dl-shed", "reroute", "shed%", "SLO%", "p50", "p99"
    );
    println!("{}", "-".repeat(94));
    for class in ServiceClass::ALL {
        let stats = report.class_stats(class);
        if stats.requests == 0 {
            continue;
        }
        let h = report.class_hist(class);
        println!(
            "{:<10} {:>8} {:>9} {:>6} {:>8} {:>8} {:>6.2}% {:>5.1}% {:>12} {:>12}",
            class.label(),
            stats.requests,
            stats.answered,
            stats.shed,
            stats.deadline_shed,
            stats.rerouted,
            stats.shed_rate() * 100.0,
            stats.slo_attainment() * 100.0,
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string()
        );
    }
}

fn main() {
    let requests = requested_load();
    println!("== E7: closed-loop query serving over the F2C hierarchy ==\n");

    // --- warm-up: event-driven ingest day slice ------------------------
    let t = Instant::now();
    let mut city = F2cCity::barcelona().expect("barcelona deployment builds");
    let warm =
        populate_city(&mut city, WARMUP_SCALE, 2017, WARMUP_HORIZON_S, 900).expect("warm-up runs");
    println!(
        "warm-up: {} readings -> {} records over {} simulated hours \
         ({} flushes) in {:.2?}",
        warm.offered,
        warm.stored,
        WARMUP_HORIZON_S / 3_600,
        warm.flushes,
        t.elapsed()
    );

    // --- serving: the closed-loop main run ------------------------------
    // Fog-2 capacity must absorb fan-out pressure: one city-wide
    // scatter-gather holds a slot per district leg, and the QoS policy
    // carves every cap into per-class guarantees plus borrowable
    // headroom (e.g. city-wide panels are guaranteed 20% of fog 2 and
    // may borrow more, while analytics borrowing can never touch the
    // real-time guarantee). One deliberate consequence shows up in the
    // class table: a city-wide *live* probe over an unsettled window
    // fans out over all 73 fog-1 nodes, which exceeds the city-wide
    // fog-1 allowance — the quota refuses the mega-fan-out instead of
    // letting it crowd the edge layer real-time reads run on.
    let cfg = EngineConfig {
        caps: LayerCaps {
            fog1: 256,
            fog2: 64,
            cloud: 2,
        },
        ..EngineConfig::default()
    };
    // The main run rides the district-sharded runtime at the PARALLELISM
    // knob (default: available cores). The run is byte-identical at any
    // thread count — the self-check below proves it on this build — so
    // every gated metric is the same whether CI has 1 core or 16.
    let threads = Parallelism::from_env();
    city.set_parallelism(threads);
    let mut engine = QueryEngine::new(city, cfg);
    let config = WorkloadConfig {
        seed: 2017,
        requests,
        users: 600,
        mix: Mix {
            dashboard: 40,
            analytics: 10,
            realtime: 40,
            city: 10,
        },
        start_s: WARMUP_HORIZON_S,
        flush_period_s: 900,
        ingest_period_s: 300,
        ingest_scale: WARMUP_SCALE,
        // A compressed two-hour "day": the run starts at the peak,
        // sweeps down to the 0.5× off-peak trough and back (§IV.D).
        diurnal: Some(DiurnalCurve {
            period_s: 7_200,
            trough_milli: 500,
            peak_milli: 1_800,
            peak_at_s: 0,
        }),
        flash_crowds: [None; 4],
        record_transcript: false,
    };
    let t = Instant::now();
    let report = parallel::run(&mut engine, &config).expect("workload runs");
    let wall = t.elapsed();

    println!(
        "\nworkload: {} requests from {} users over {} simulated seconds \
         on {} worker thread(s) in {:.2?} ({:.0} req/s wall)",
        report.issued,
        config.users,
        report.sim_end_s - config.start_s,
        threads.get(),
        wall,
        report.issued as f64 / wall.as_secs_f64()
    );
    println!(
        "transcript hash: {:#018x} (seeded replays reproduce it)\n",
        report.transcript_hash
    );

    println!(
        "{:<12} {:>9} {:>14} {:>14}",
        "layer", "served", "p50 latency", "p99 latency"
    );
    println!("{}", "-".repeat(52));
    for layer in Layer::ALL {
        let h = report.layer_hist(layer);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<12} {:>9} {:>14} {:>14}",
            format!("{layer}"),
            h.count(),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string()
        );
    }

    let scatter = &report.scatter_latency;
    if scatter.count() > 0 {
        println!(
            "{:<12} {:>9} {:>14} {:>14}",
            "scatter",
            scatter.count(),
            scatter.quantile(0.5).to_string(),
            scatter.quantile(0.99).to_string()
        );
    }

    print_class_table(&report);

    let stats = engine.stats();
    println!(
        "\nanswered {} | edge hits {} | source hits {} | store served {} \
         | cache hit rate {:.1}%",
        report.answered,
        report.edge_hits,
        report.source_hits,
        report.store_served,
        report.cache_hit_rate() * 100.0
    );
    println!(
        "scatter-gather: {} served over {} legs ({:.1} legs/query) | \
         contested routes: fan-out {} / cloud {} ({:.1}% fan-out wins)",
        report.scatter_served,
        report.scatter_legs,
        report.scatter_legs as f64 / report.scatter_served.max(1) as f64,
        report.scatter_wins,
        report.cloud_wins,
        100.0 * report.scatter_wins as f64
            / (report.scatter_wins + report.cloud_wins).max(1) as f64
    );
    println!(
        "shed: fog1 {} / fog2 {} / cloud {} (capacity {}) | deadline {} \
         | unanswerable {}",
        stats.shed[0],
        stats.shed[1],
        stats.shed[2],
        stats.shed_total(),
        stats.deadline_shed_total(),
        report.unanswerable
    );
    println!(
        "scans: {} records visited | partial cache: {} hits / {} fills",
        stats.records_scanned, stats.partial_hits, stats.partial_fills
    );
    // Sketch plane, read side: of the buckets the partial cache missed
    // during the run, how many were assembled from flush-shipped
    // pre-folded partials instead of scanned (both counters are
    // run-scoped deltas).
    let cold_buckets = report.prefold_hits + report.partial_fills;
    println!(
        "sketch plane: {} buckets prefolded from flush-shipped partials \
         / {} scanned ({:.1}% sketch hit rate on cold buckets)",
        report.prefold_hits,
        report.partial_fills,
        100.0 * report.prefold_hits as f64 / cold_buckets.max(1) as f64
    );
    // Sketch plane, write side: the sketch channel's cost next to the
    // raw stream it summarizes.
    let (raw1, raw2) = engine.city().raw_flush_bytes();
    let (sk1, sk2) = engine.city().sketch_flush_bytes();
    let (raw, sk) = (raw1 + raw2, sk1 + sk2);
    println!(
        "flush shipping: raw {:.2} MB + sketches {:.2} MB — the aggregate \
         plane rides at {:.1}x fewer bytes than the raw stream it \
         summarizes (constant-size partials: the gap widens with sensor \
         density; Table-I full scale is 2000x this population)",
        raw as f64 / 1e6,
        sk as f64 / 1e6,
        raw as f64 / sk.max(1) as f64
    );
    let (up1, up2) = engine.city().uplink_flush_bytes();
    println!(
        "flush codec: uplink carried {:.2} MB encoded ({:.1}x under the \
         {:.2} MB accounting stream — tsenc columnar shipping on both hops)",
        (up1 + up2) as f64 / 1e6,
        raw as f64 / (up1 + up2).max(1) as f64,
        raw as f64 / 1e6
    );
    assert!(
        up1 + up2 > 0 && up1 + up2 < raw,
        "the encoded uplink must ship, and ship under the accounting bytes"
    );
    assert!(
        report.prefold_hits > 0,
        "settled buckets must assemble from the flush-shipped ledger"
    );
    assert!(
        sk > 0 && sk < raw,
        "the sketch channel must ship, and ship far less than raw ({sk} vs {raw})"
    );

    assert!(report.issued >= requests, "must push the requested load");
    assert!(
        report.answered as f64 >= 0.9 * report.issued as f64,
        "a warm hierarchy answers the overwhelming majority"
    );
    assert!(
        report.cache_hit_rate() > 0.10,
        "dashboards must produce real cache traffic"
    );
    assert!(
        report.scatter_served > 0 && report.scatter_latency.count() == report.scatter_served,
        "the city-wide mix must exercise scatter-gather with recorded latencies"
    );
    assert!(
        report.scatter_wins > 0,
        "settled city windows must put the fog-2 fan-out ahead of the cloud read"
    );
    assert_eq!(
        report.class_stats(ServiceClass::RealTime).shed,
        0,
        "the steady mix must never shed a real-time read"
    );

    // --- parallel conformance: threads cannot change a single byte ------
    // Two fresh replicas of a smaller closed loop, one on a single
    // worker thread and one on four, must produce byte-identical
    // transcripts (the full-artifact oracle lives in tests/parallel.rs;
    // this proves it on the release build CI actually benches). The
    // 1-CPU CI runner cannot observe wall-clock speedup, so the export
    // below carries threads + wall time as ungated info fields instead
    // of asserting a ratio.
    println!("\n== parallel conformance: thread count must not change bytes ==");
    let self_check = |threads: usize| {
        let mut sc_city = F2cCity::barcelona().expect("city builds");
        sc_city.set_parallelism(Parallelism::new(threads));
        populate_city(&mut sc_city, 20_000, 2017, 3_600, 900).expect("warm-up runs");
        let mut sc_engine = QueryEngine::new(sc_city, EngineConfig::default());
        let sc_config = WorkloadConfig {
            seed: 2017,
            requests: 10_000,
            users: 48,
            start_s: 3_600,
            flush_period_s: 300,
            ingest_period_s: 300,
            ingest_scale: 20_000,
            record_transcript: true,
            ..WorkloadConfig::default()
        };
        let r = parallel::run(&mut sc_engine, &sc_config).expect("self-check runs");
        (r.transcript, r.transcript_hash)
    };
    let t = Instant::now();
    let (bytes_seq, selfcheck_hash) = self_check(1);
    let (bytes_par, hash_par) = self_check(4);
    assert_eq!(
        selfcheck_hash, hash_par,
        "transcript hashes diverge across thread counts"
    );
    assert_eq!(
        bytes_seq, bytes_par,
        "transcripts diverge across thread counts"
    );
    println!(
        "10k-request self-check: threads=1 and threads=4 agree byte-for-byte \
         (hash {selfcheck_hash:#018x}) in {:.2?}. SHAPE OK",
        t.elapsed()
    );

    // --- flash crowd: the QoS promise under a deliberate overload -------
    // A fresh, tightly-capped engine (result caches disabled so the
    // burst's aggregates cannot hide behind cache hits, which bypass
    // admission) takes a 300-user analytics stampede. The analytics
    // quota saturates and sheds *during the burst window* while the
    // real-time guarantee keeps every live read flowing — the
    // "never shed a real-time read while analytics holds borrowed
    // slots" invariant, demonstrated at the same instant.
    println!("\n== flash crowd: analytics stampede vs the real-time guarantee ==");
    let mut crowd_city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut crowd_city, 20_000, 2017, 3_600, 900).expect("warm-up runs");
    let crowd_cfg = EngineConfig {
        result_ttl_s: 0,
        caps: LayerCaps {
            fog1: 64,
            fog2: 8,
            cloud: 4,
        },
        ..EngineConfig::default()
    };
    let mut crowd_engine = QueryEngine::new(crowd_city, crowd_cfg);
    let mut crowd_config = WorkloadConfig {
        seed: 2017,
        requests: 30_000,
        users: 64,
        start_s: 3_600,
        ingest_scale: 20_000,
        ..WorkloadConfig::default()
    };
    crowd_config.flash_crowds[0] = Some(FlashCrowd {
        class: ServiceClass::Analytics,
        start_s: 3_660,
        duration_s: 120,
        users: 300,
        think_divisor: 32,
    });
    let t = Instant::now();
    let crowd_report = workload::run(&mut crowd_engine, &crowd_config).expect("burst runs");
    println!(
        "burst workload: {} requests in {:.2?}",
        crowd_report.issued,
        t.elapsed()
    );
    print_class_table(&crowd_report);
    let analytics = crowd_report.class_stats(ServiceClass::Analytics);
    let realtime = crowd_report.class_stats(ServiceClass::RealTime);
    println!(
        "\nduring the burst window: analytics shed {} of {} issued \
         ({:.1}% shed rate) while real-time shed {} of {}",
        crowd_report.flash_shed(ServiceClass::Analytics),
        analytics.requests,
        analytics.shed_rate() * 100.0,
        realtime.shed,
        realtime.requests,
    );
    assert!(
        crowd_report.flash_shed(ServiceClass::Analytics) > 0,
        "the stampede must overrun the analytics quota"
    );
    assert_eq!(
        realtime.shed, 0,
        "the real-time guarantee must hold through the stampede"
    );
    assert!(
        realtime.requests > 0 && realtime.answered > 0,
        "real-time reads keep flowing during the burst"
    );
    println!("-> analytics sheds, the real-time guarantee holds. SHAPE OK");

    // --- warm vs cold: the cache pays for itself ------------------------
    // The probe aggregates a whole category over a district, so the
    // hash-spread scaled-down population guarantees a non-trivial record
    // set. The probe's window must be *closed* (end at or before the
    // serve instant) to be result-cacheable, so it ends at the settling
    // flush.
    let now = report.sim_end_s + 900;
    engine.flush_all(now).expect("flush to invalidate caches");
    let district = engine.city().district_of(3);
    let probe = Query {
        origin: 3,
        class: ServiceClass::Dashboard,
        selector: Selector::Category(Category::Energy),
        scope: Scope::District(district),
        window: TimeWindow::new(0, engine.last_flush_s()),
        kind: QueryKind::Aggregate,
    };
    let serve = |engine: &mut QueryEngine, at: u64| {
        let t = Instant::now();
        let outcome = engine.serve_sync(&probe, at).expect("probe serves");
        let wall = t.elapsed();
        match outcome {
            Outcome::Answered(resp) => (resp, wall),
            Outcome::Shed {
                layer,
                class,
                cause,
            } => {
                panic!("probe ({class}) shed at {layer}: {cause:?}")
            }
        }
    };
    let (cold, cold_wall) = serve(&mut engine, now + 1);
    let (hot, hot_wall) = serve(&mut engine, now + 2);
    println!(
        "\nwarm vs cold ({} records aggregated):",
        match &cold.answer {
            f2c_query::QueryAnswer::Aggregate(a) => a.count,
            _ => 0,
        }
    );
    println!(
        "  cold path : {:>12} simulated, {:>10.2?} wall  ({:?})",
        cold.est_latency.to_string(),
        cold_wall,
        cold.via
    );
    println!(
        "  warm hit  : {:>12} simulated, {:>10.2?} wall  ({:?})",
        hot.est_latency.to_string(),
        hot_wall,
        hot.via
    );
    assert!(
        hot.est_latency < cold.est_latency,
        "a warm result-cache hit must be cheaper than the cold path"
    );
    println!(
        "  -> {:.1}x cheaper simulated latency on the warm path. SHAPE OK",
        cold.est_latency.as_secs_f64() / hot.est_latency.as_secs_f64().max(1e-12)
    );

    // --- warm sketches: answering after eviction -------------------------
    // Age the deployment ten days: fog-1 (1-day) and fog-2 (7-day) raw
    // retention evict the whole serving window, so before the sketch
    // plane every historical aggregate below rode the ~70 ms WAN trip —
    // busting the real-time budget outright. The fog-1 ledgers still
    // hold the pre-folded bucket partials, so aligned aggregate windows
    // answer locally from warm sketches, and a district fan-out of
    // warm-sketch legs beats the cloud read in the route contest.
    println!("\n== warm sketches: serving evicted windows from the sketch plane ==");
    let day10 = now + 10 * 86_400;
    engine.flush_all(day10).expect("aging flush runs");
    let from = WARMUP_HORIZON_S;
    let until = ((report.sim_end_s / 900) * 900).max(from + 900);
    let before = engine.stats();
    let mut checked = 0u64;
    for section in (0..73).step_by(7) {
        let warm_probe = Query {
            origin: section,
            class: ServiceClass::RealTime,
            selector: Selector::Category(Category::Urban),
            scope: Scope::Section(section),
            window: TimeWindow::new(from, until),
            kind: QueryKind::Aggregate,
        };
        let warm = match engine.serve_sync(&warm_probe, day10 + 1).expect("serves") {
            Outcome::Answered(resp) => resp,
            other => panic!("warm-sketch probe must answer, got {other:?}"),
        };
        let agg = match &warm.answer {
            f2c_query::QueryAnswer::Aggregate(a) => *a,
            other => panic!("expected an aggregate, got {other:?}"),
        };
        // Cross-check against the cloud's raw records (a range read has
        // no sketch shortcut, so it must climb to the permanent tier).
        let raw_probe = Query {
            class: ServiceClass::Analytics,
            kind: QueryKind::Range,
            ..warm_probe
        };
        let raw = match engine.serve_sync(&raw_probe, day10 + 2).expect("serves") {
            Outcome::Answered(resp) => resp,
            other => panic!("cloud cross-check must answer, got {other:?}"),
        };
        let records = match &raw.answer {
            f2c_query::QueryAnswer::Records(recs) => recs,
            other => panic!("expected records, got {other:?}"),
        };
        assert_eq!(
            agg.count,
            records.len() as u64,
            "warm-sketch count must equal the cloud's raw record count (section {section})"
        );
        assert!(
            warm.est_latency < raw.est_latency,
            "the local sketch merge must undercut the WAN read"
        );
        checked += 1;
    }
    let district_probe = Query {
        origin: 3,
        class: ServiceClass::CityWide,
        selector: Selector::Category(Category::Urban),
        scope: Scope::District(engine.city().district_of(3)),
        window: TimeWindow::new(from, until),
        kind: QueryKind::Aggregate,
    };
    let fanout = match engine
        .serve_sync(&district_probe, day10 + 3)
        .expect("serves")
    {
        Outcome::Answered(resp) => resp,
        other => panic!("sketch-leg fan-out must answer, got {other:?}"),
    };
    let delta_served = engine.stats().sketch_served - before.sketch_served;
    let delta_hits = engine.stats().sketch_hits - before.sketch_hits;
    let delta_legs = engine.stats().sketch_legs - before.sketch_legs;
    let delta_wins = engine.stats().scatter_wins - before.scatter_wins;
    println!(
        "probed {checked} sections + 1 district over the evicted window \
         [{from}, {until})"
    );
    println!(
        "warm-sketch hits: {delta_served} real-time answers from {delta_hits} \
         pre-folded partials, every count equal to the cloud's raw archive"
    );
    println!(
        "district fan-out: {delta_legs} warm-sketch legs, contest vs cloud won \
         {delta_wins} time(s) ({:?} at {})",
        fanout.via, fanout.est_latency
    );
    assert!(
        delta_served >= checked,
        "every section probe must serve from warm sketches"
    );
    assert!(delta_hits > 0, "warm-sketch hits must be nonzero");
    assert!(
        delta_legs > 0 && delta_wins > 0,
        "the sketch-leg fan-out must contest and beat the cloud read"
    );
    println!(
        "-> evicted windows answer from warm sketches, within the real-time \
         budget, exactly matching the cloud's archive. SHAPE OK"
    );

    // --- chaos: faults degrade availability, never correctness ----------
    // A seeded fault schedule — a fog-1 crash, a whole-district fog-2
    // crash, a short cloud blackout, plus per-epoch flush-shipment loss
    // and sketch-corruption coins — runs under live closed-loop load.
    // Every fault must surface as an availability effect (fault sheds,
    // shed fan-out legs, partial answers, deferred flush waves, punched
    // sketch holes) in the incident timeline; none may leak into an
    // answered result. After the storm, healthy flush waves plus sketch
    // anti-entropy must leave every ledger hole-free, and settled
    // aggregates must equal the raw archive's record counts exactly.
    println!("\n== chaos: fault injection, degraded serving, anti-entropy healing ==");
    let mut chaos_city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut chaos_city, 20_000, 2017, 3_600, 900).expect("warm-up runs");
    let mut plan = FailurePlan::with_seed(2017);
    plan.set_shipment_loss(0.10);
    plan.set_shipment_corruption(0.08);
    chaos_city.set_failures(plan);
    // Crash windows sized against the ~15 min simulated storm: each
    // overlaps a 300 s flush epoch so deferrals, shed legs and punched
    // holes all occur while consumers are still asking.
    chaos_city.inject_node_outage(ChaosSite::Fog1(5), 3_650, 3_980);
    chaos_city.inject_node_outage(ChaosSite::Fog2(2), 4_050, 4_350);
    chaos_city.inject_node_outage(ChaosSite::Cloud, 4_150, 4_250);
    let chaos_cfg = EngineConfig {
        caps: LayerCaps {
            fog1: 256,
            fog2: 64,
            cloud: 8,
        },
        ..EngineConfig::default()
    };
    let mut chaos_engine = QueryEngine::new(chaos_city, chaos_cfg);
    // Sized so the storm spans past 4_500 s: the 900 s sketch bucket
    // opened at the workload's start must *close* inside the storm, or
    // no flush wave ships partials for the corruption coin to damage.
    let chaos_config = WorkloadConfig {
        seed: 2017,
        requests: 90_000,
        users: 200,
        mix: Mix {
            dashboard: 40,
            analytics: 10,
            realtime: 40,
            city: 10,
        },
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 20_000,
        ..WorkloadConfig::default()
    };
    let t = Instant::now();
    let chaos_report =
        workload::run(&mut chaos_engine, &chaos_config).expect("faults degrade, never error");
    println!(
        "storm workload: {} requests over {} simulated seconds in {:.2?}",
        chaos_report.issued,
        chaos_report.sim_end_s - chaos_config.start_s,
        t.elapsed()
    );

    // The storm is over: clear the plan and let two healthy flush waves
    // (each ending in an anti-entropy round) ship the deferred batches
    // and re-ship authoritative partials over every punched hole.
    let storm_end = chaos_report.sim_end_s;
    chaos_engine.city_mut().set_failures(FailurePlan::none());
    chaos_engine
        .flush_all(storm_end + 300)
        .expect("healing flush");
    chaos_engine
        .flush_all(storm_end + 600)
        .expect("healing flush");

    // The incident table renders from the same export object the perf
    // gate consumes — what CI gates is exactly what the operator reads.
    let summary = chaos_engine.city().timeline().summary();
    let incidents_json = export::counts_json(summary.iter().map(|(k, v)| (*k, *v)));
    println!("\n{:<18} {:>8}", "incident", "count");
    println!("{}", "-".repeat(28));
    for (label, count) in incidents_json.members() {
        println!("{:<18} {:>8}", label, count.as_u64().unwrap_or(0));
    }
    println!(
        "\ndegraded serving: {} fault sheds | {} fan-out legs shed | \
         {} partial answers | {} answered through the storm",
        chaos_report.fault_shed,
        chaos_report.legs_shed,
        chaos_report.degraded,
        chaos_report.answered
    );
    assert!(
        chaos_report.fault_shed > 0,
        "crash windows must surface as fault sheds"
    );
    assert!(
        chaos_report.legs_shed > 0 && chaos_report.degraded > 0,
        "the district crash must shed fan-out legs into partial answers"
    );
    assert!(
        chaos_report.answered > chaos_report.issued / 2,
        "the city must keep answering through the storm"
    );
    assert!(
        summary.get("hole-punched").copied().unwrap_or(0) > 0
            && summary.get("hole-healed").copied().unwrap_or(0) > 0,
        "corruption coins must punch sketch holes and anti-entropy must heal them"
    );

    // Hole-free ledgers after healing, at every upper tier, both in the
    // ledgers themselves and in the timeline's punch/heal pairing.
    let city = chaos_engine.city();
    for d in 0..city.district_count() {
        assert!(
            city.fog2(d).sketches().holes_sorted().is_empty(),
            "fog-2 district {d} ledger must be hole-free after anti-entropy"
        );
        assert!(
            city.timeline()
                .unhealed_holes(ChaosSite::Fog2(d))
                .is_empty(),
            "timeline must pair every fog-2 d{d} punch with a heal"
        );
    }
    assert!(
        city.cloud().sketches().holes_sorted().is_empty(),
        "cloud ledger must be hole-free after anti-entropy"
    );
    assert!(
        city.timeline().unhealed_holes(ChaosSite::Cloud).is_empty(),
        "timeline must pair every cloud punch with a heal"
    );

    // Zero correctness divergence: settled aggregates (which ride the
    // healed sketch plane when they can) must equal the raw archive's
    // record count, both at the crashed section and across the crashed
    // district.
    let settle = (storm_end / 900) * 900;
    let heal_now = storm_end + 601;
    let crashed_district = chaos_engine.city().district_of(5);
    let probes = [
        (5usize, Scope::Section(5)),
        (5, Scope::District(crashed_district)),
    ];
    for (origin, scope) in probes {
        let agg_probe = Query {
            origin,
            class: ServiceClass::Dashboard,
            selector: Selector::Category(Category::Urban),
            scope,
            window: TimeWindow::new(3_600, settle),
            kind: QueryKind::Aggregate,
        };
        let raw_probe = Query {
            class: ServiceClass::Analytics,
            kind: QueryKind::Range,
            ..agg_probe
        };
        let agg = match chaos_engine
            .serve_sync(&agg_probe, heal_now)
            .expect("serves")
        {
            Outcome::Answered(resp) => resp,
            other => panic!("healed aggregate must answer, got {other:?}"),
        };
        let raw = match chaos_engine
            .serve_sync(&raw_probe, heal_now + 1)
            .expect("serves")
        {
            Outcome::Answered(resp) => resp,
            other => panic!("raw cross-check must answer, got {other:?}"),
        };
        let count = match &agg.answer {
            f2c_query::QueryAnswer::Aggregate(a) => a.count,
            other => panic!("expected an aggregate, got {other:?}"),
        };
        let records = match &raw.answer {
            f2c_query::QueryAnswer::Records(recs) => recs.len() as u64,
            other => panic!("expected records, got {other:?}"),
        };
        assert_eq!(
            count, records,
            "healed aggregate must equal the raw archive count ({scope:?})"
        );
    }
    println!(
        "-> the storm shed load and punched holes; healing left every ledger \
         hole-free and every settled aggregate equal to the raw archive. SHAPE OK"
    );

    // Diagnosis plane, storm side: the injected faults shed real-time
    // answers, so the availability burn-rate must cross the fast+slow
    // thresholds *during* the storm (fired), then fall back under once
    // the outage windows close and healthy serving resumes (resolved).
    // Every transition is also an incident on the shared timeline, so
    // the alert is attributed alongside the crash/loss events that
    // caused it rather than floating in a separate system.
    let chaos_monitor = chaos_engine.city().burn_monitor();
    println!("\n== diagnosis: SLO burn-rate alerting through the storm ==");
    for event in chaos_monitor.events() {
        println!(
            "  t={:>6}s {:<14} fast {:>8} milli-burn | slow {:>8} milli-burn{}",
            event.at_s,
            if event.fired {
                "alert-fired"
            } else {
                "alert-resolved"
            },
            event.fast_burn_milli,
            event.slow_burn_milli,
            if event.flight_record.is_empty() {
                String::new()
            } else {
                format!(
                    " | flight recorder: {} span(s)",
                    event.flight_record.lines().count()
                )
            }
        );
    }
    assert!(
        chaos_monitor.fired_count() >= 1,
        "the storm must fire the availability alert"
    );
    assert!(
        chaos_monitor.resolved_count() >= 1 && !chaos_monitor.firing(),
        "healing must resolve every availability alert"
    );
    assert!(
        chaos_report.fault_shed > 0
            && summary.get("alert-fired").copied().unwrap_or(0) >= 1
            && summary.get("alert-resolved").copied().unwrap_or(0) >= 1,
        "alert transitions must land on the incident timeline next to the \
         faults that caused them"
    );
    println!(
        "-> fired {} time(s) on injected faults, resolved {} time(s) after \
         healing, zero false positives fault-free. SHAPE OK",
        chaos_monitor.fired_count(),
        chaos_monitor.resolved_count()
    );

    // --- export: the observability snapshot feeding the CI perf gate ----
    // One schema-versioned document: the main run's workload shape, flush
    // shipping costs, per-phase trace summaries and the full registry
    // snapshot, plus the chaos scenario's incident table and heal
    // outcomes. CI smoke-runs this bench (E7_REQUESTS=50000) and
    // `perf_gate` diffs the document against `bench/baseline.json`.
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_queries.json".to_string());
    let mut doc = Json::obj();
    doc.set("schema_version", export::num(export::SCHEMA_VERSION));
    doc.set("bench", Json::Str("queries".to_string()));
    doc.set("requests", export::num(requests));

    let mut workload_j = Json::obj();
    workload_j.set("issued", export::num(report.issued));
    workload_j.set("answered", export::num(report.answered));
    workload_j.set(
        "answer_rate",
        Json::Num(report.answered as f64 / report.issued.max(1) as f64),
    );
    workload_j.set("cache_hit_rate", Json::Num(report.cache_hit_rate()));
    workload_j.set("unanswerable", export::num(report.unanswerable));
    workload_j.set("shed_fog1", export::num(stats.shed[0]));
    workload_j.set("shed_fog2", export::num(stats.shed[1]));
    workload_j.set("shed_cloud", export::num(stats.shed[2]));
    workload_j.set("shed_total", export::num(stats.shed_total()));
    workload_j.set("deadline_shed", export::num(stats.deadline_shed_total()));
    workload_j.set("scatter_served", export::num(report.scatter_served));
    workload_j.set("scatter_legs", export::num(report.scatter_legs));
    workload_j.set("scatter_wins", export::num(report.scatter_wins));
    workload_j.set("cloud_wins", export::num(report.cloud_wins));
    workload_j.set("records_scanned", export::num(stats.records_scanned));
    workload_j.set("prefold_hits", export::num(report.prefold_hits));
    workload_j.set("partial_fills", export::num(report.partial_fills));
    doc.set("workload", workload_j);

    let cloud_records = engine.city().cloud().store().len() as u64;
    let (up1, up2) = engine.city().uplink_flush_bytes();
    let uplink = up1 + up2;
    let mut flush_j = Json::obj();
    flush_j.set("raw_bytes", export::num(raw));
    flush_j.set("sketch_bytes", export::num(sk));
    flush_j.set("sketch_ratio", Json::Num(sk as f64 / raw.max(1) as f64));
    flush_j.set("uplink_bytes", export::num(uplink));
    flush_j.set("cloud_records", export::num(cloud_records));
    // Gated shipping cost: bytes the network actually carried per
    // cloud-stored record — the tsenc codec's win lands here (v3).
    flush_j.set(
        "bytes_per_record",
        Json::Num(uplink as f64 / cloud_records.max(1) as f64),
    );
    doc.set("flush", flush_j);

    // Parallel-runtime info fields: the thread count the main run rode,
    // its wall time, and the self-check's agreed transcript hash. These
    // are deliberately *ungated* — wall time is machine noise and the
    // thread count is environment policy; byte-identity means neither
    // can move a gated metric.
    let mut parallel_j = Json::obj();
    parallel_j.set("threads", export::num(threads.get() as u64));
    parallel_j.set("wall_ms", export::num(wall.as_millis() as u64));
    parallel_j.set(
        "req_per_s_wall",
        Json::Num(report.issued as f64 / wall.as_secs_f64()),
    );
    parallel_j.set(
        "selfcheck_hash",
        Json::Str(format!("{selfcheck_hash:#018x}")),
    );
    parallel_j.set("selfcheck_match", export::num(1));
    doc.set("parallel", parallel_j);

    engine.sync_gauges();
    doc.set("phases", export::phases_json(engine.city().tracer()));
    doc.set(
        "registry",
        export::snapshot_json(&engine.city().metrics().snapshot()),
    );

    // Diagnosis plane, fault-free side: the explain reservoir and the
    // per-bucket trace exemplars must have filled, and the burn-rate
    // monitor must never have fired — there were no faults to burn SLO
    // budget on, so a fire here is a broken monitor or a real
    // regression (perf_gate enforces the same invariant absolutely).
    let explains = engine.city().explains();
    let exemplars = engine.city().exemplars();
    let monitor = engine.city().burn_monitor();
    println!(
        "\ndiagnosis plane: {} explains kept of {} planned | {} exemplar \
         bucket(s) holding their slowest trace | {} alert(s) fired \
         (fault-free: must be 0)",
        explains.kept(),
        explains.seen(),
        exemplars.kept(),
        monitor.fired_count()
    );
    let explains_j = explains.export();
    if let Some(Json::Arr(records)) = explains_j.path("records") {
        if let Some(choice) = records
            .first()
            .and_then(|rec| rec.path("choice"))
            .and_then(Json::as_str)
        {
            println!("  sample explain choice: {choice} (full transcripts in the export)");
        }
    }
    assert!(
        explains.kept() > 0 && exemplars.kept() > 0,
        "the diagnosis stores must capture the main run"
    );
    assert_eq!(
        monitor.fired_count(),
        0,
        "the fault-free main run must never fire an SLO alert"
    );
    doc.set("explains", explains_j);
    doc.set("exemplars", exemplars.export());
    doc.set("alerts", monitor.export());

    let chaos_snap = chaos_engine.city().metrics().snapshot();
    let heal = |kind: &str| {
        chaos_snap
            .counter(&format!("heal_outcomes{{service=sketch,kind={kind}}}"))
            .unwrap_or(0)
    };
    let mut heal_j = Json::obj();
    heal_j.set("healed", export::num(heal("healed")));
    heal_j.set("blocked", export::num(heal("blocked")));
    heal_j.set("impossible", export::num(heal("impossible")));
    let mut chaos_j = Json::obj();
    chaos_j.set("fault_shed", export::num(chaos_report.fault_shed));
    chaos_j.set("legs_shed", export::num(chaos_report.legs_shed));
    chaos_j.set("degraded", export::num(chaos_report.degraded));
    chaos_j.set("answered", export::num(chaos_report.answered));
    chaos_j.set("incidents", incidents_json);
    chaos_j.set("heal", heal_j);
    chaos_j.set("alerts", chaos_engine.city().burn_monitor().export());
    doc.set("chaos", chaos_j);

    std::fs::write(&out_path, doc.to_pretty()).expect("bench export writes");
    println!(
        "\nexported observability snapshot -> {out_path} ({} gated metrics; \
         diff with `cargo run -p f2c-bench --bin perf_gate -- \
         bench/baseline.json {out_path}`)",
        export::budget_rules().len()
    );
}
