//! Experiment E7: consumer query serving over the F2C hierarchy — a
//! seeded ≥1M-request closed-loop workload (dashboard / analytics /
//! real-time / city-wide mix) against a warmed Barcelona deployment,
//! reporting per-layer latency percentiles, scatter-gather percentiles
//! and fan-out-vs-cloud win rates, cache hit rates and admission sheds,
//! plus a warm-vs-cold serving microbenchmark.
//!
//! Run with `cargo run --release -p f2c-bench --bin queries`.

use std::time::Instant;

use f2c_core::runtime::populate_city;
use f2c_core::{F2cCity, Layer};
use f2c_query::workload::{self, Mix, WorkloadConfig};
use f2c_query::{
    EngineConfig, LayerCaps, Outcome, Query, QueryEngine, QueryKind, Scope, Selector, TimeWindow,
};
use scc_sensors::Category;

const WARMUP_SCALE: u64 = 2_000;
const WARMUP_HORIZON_S: u64 = 4 * 3_600;
const REQUESTS: u64 = 1_000_000;

fn main() {
    println!("== E7: closed-loop query serving over the F2C hierarchy ==\n");

    // --- warm-up: event-driven ingest day slice ------------------------
    let t = Instant::now();
    let mut city = F2cCity::barcelona().expect("barcelona deployment builds");
    let warm =
        populate_city(&mut city, WARMUP_SCALE, 2017, WARMUP_HORIZON_S, 900).expect("warm-up runs");
    println!(
        "warm-up: {} readings -> {} records over {} simulated hours \
         ({} flushes) in {:.2?}",
        warm.offered,
        warm.stored,
        WARMUP_HORIZON_S / 3_600,
        warm.flushes,
        t.elapsed()
    );

    // --- serving: 1M closed-loop requests ------------------------------
    // Fog-2 capacity must absorb fan-out pressure: one city-wide
    // scatter-gather holds a slot per district leg, so the cap is sized
    // in whole fan-outs (64 ≈ six concurrent city-wide queries).
    let cfg = EngineConfig {
        caps: LayerCaps {
            fog1: 256,
            fog2: 64,
            cloud: 2,
        },
        ..EngineConfig::default()
    };
    let mut engine = QueryEngine::new(city, cfg);
    let config = WorkloadConfig {
        seed: 2017,
        requests: REQUESTS,
        users: 600,
        mix: Mix {
            dashboard: 40,
            analytics: 10,
            realtime: 40,
            city: 10,
        },
        start_s: WARMUP_HORIZON_S,
        flush_period_s: 900,
        ingest_period_s: 300,
        ingest_scale: WARMUP_SCALE,
        record_transcript: false,
    };
    let t = Instant::now();
    let report = workload::run(&mut engine, &config).expect("workload runs");
    let wall = t.elapsed();

    println!(
        "\nworkload: {} requests from {} users over {} simulated seconds \
         in {:.2?} ({:.0} req/s wall)",
        report.issued,
        config.users,
        report.sim_end_s - config.start_s,
        wall,
        report.issued as f64 / wall.as_secs_f64()
    );
    println!(
        "transcript hash: {:#018x} (seeded replays reproduce it)\n",
        report.transcript_hash
    );

    println!(
        "{:<12} {:>9} {:>14} {:>14}",
        "layer", "served", "p50 latency", "p99 latency"
    );
    println!("{}", "-".repeat(52));
    for layer in Layer::ALL {
        let h = report.layer_hist(layer);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<12} {:>9} {:>14} {:>14}",
            format!("{layer}"),
            h.count(),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string()
        );
    }

    let scatter = &report.scatter_latency;
    if scatter.count() > 0 {
        println!(
            "{:<12} {:>9} {:>14} {:>14}",
            "scatter",
            scatter.count(),
            scatter.quantile(0.5).to_string(),
            scatter.quantile(0.99).to_string()
        );
    }

    let stats = engine.stats();
    println!(
        "\nanswered {} | edge hits {} | source hits {} | store served {} \
         | cache hit rate {:.1}%",
        report.answered,
        report.edge_hits,
        report.source_hits,
        report.store_served,
        report.cache_hit_rate() * 100.0
    );
    println!(
        "scatter-gather: {} served over {} legs ({:.1} legs/query) | \
         contested routes: fan-out {} / cloud {} ({:.1}% fan-out wins)",
        report.scatter_served,
        report.scatter_legs,
        report.scatter_legs as f64 / report.scatter_served.max(1) as f64,
        report.scatter_wins,
        report.cloud_wins,
        100.0 * report.scatter_wins as f64
            / (report.scatter_wins + report.cloud_wins).max(1) as f64
    );
    println!(
        "shed: fog1 {} / fog2 {} / cloud {} (total {}) | unanswerable {}",
        stats.shed[0],
        stats.shed[1],
        stats.shed[2],
        stats.shed_total(),
        report.unanswerable
    );
    println!(
        "scans: {} records visited | partial cache: {} hits / {} fills",
        stats.records_scanned, stats.partial_hits, stats.partial_fills
    );

    assert!(report.issued >= REQUESTS, "must push at least 1M requests");
    assert!(
        report.answered as f64 >= 0.9 * report.issued as f64,
        "a warm hierarchy answers the overwhelming majority"
    );
    assert!(
        report.cache_hit_rate() > 0.10,
        "dashboards must produce real cache traffic"
    );
    assert!(
        report.scatter_served > 0 && report.scatter_latency.count() == report.scatter_served,
        "the city-wide mix must exercise scatter-gather with recorded latencies"
    );
    assert!(
        report.scatter_wins > 0,
        "settled city windows must put the fog-2 fan-out ahead of the cloud read"
    );

    // --- warm vs cold: the cache pays for itself ------------------------
    // The probe aggregates a whole category over a district, so the
    // hash-spread scaled-down population guarantees a non-trivial record
    // set. The probe's window must be *closed* (end at or before the
    // serve instant) to be result-cacheable, so it ends at the settling
    // flush.
    let now = report.sim_end_s + 900;
    engine.flush_all(now).expect("flush to invalidate caches");
    let district = engine.city().district_of(3);
    let probe = Query {
        origin: 3,
        selector: Selector::Category(Category::Energy),
        scope: Scope::District(district),
        window: TimeWindow::new(0, engine.last_flush_s()),
        kind: QueryKind::Aggregate,
    };
    let serve = |engine: &mut QueryEngine, at: u64| {
        let t = Instant::now();
        let outcome = engine.serve_sync(&probe, at).expect("probe serves");
        let wall = t.elapsed();
        match outcome {
            Outcome::Answered(resp) => (resp, wall),
            Outcome::Shed { layer } => panic!("probe shed at {layer}"),
        }
    };
    let (cold, cold_wall) = serve(&mut engine, now + 1);
    let (hot, hot_wall) = serve(&mut engine, now + 2);
    println!(
        "\nwarm vs cold ({} records aggregated):",
        match &cold.answer {
            f2c_query::QueryAnswer::Aggregate(a) => a.count,
            _ => 0,
        }
    );
    println!(
        "  cold path : {:>12} simulated, {:>10.2?} wall  ({:?})",
        cold.est_latency.to_string(),
        cold_wall,
        cold.via
    );
    println!(
        "  warm hit  : {:>12} simulated, {:>10.2?} wall  ({:?})",
        hot.est_latency.to_string(),
        hot_wall,
        hot.via
    );
    assert!(
        hot.est_latency < cold.est_latency,
        "a warm result-cache hit must be cheaper than the cold path"
    );
    println!(
        "  -> {:.1}x cheaper simulated latency on the warm path. SHAPE OK",
        cold.est_latency.as_secs_f64() / hot.est_latency.as_secs_f64().max(1e-12)
    );
}
