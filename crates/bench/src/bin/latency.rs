//! Experiment E4: the §IV.D latency claims — real-time accesses at fog
//! layer 1 vs the centralized cloud (including the "two times data
//! transfer through the same path" effect), plus fault-tolerance under an
//! injected WAN outage.
//!
//! Run with `cargo run --release -p f2c-bench --bin latency`.

use citysim::barcelona::{BarcelonaTopology, LatencyProfile};
use citysim::time::SimTime;
use citysim::Histogram;
use f2c_core::request::AccessSimulator;

fn main() {
    println!("== E4: real-time access latency, F2C vs centralized ==\n");
    let mut sim = AccessSimulator::new(BarcelonaTopology::build(&LatencyProfile::default()));

    println!(
        "{:>10} {:>16} {:>18} {:>10}",
        "bytes", "F2C (fog-1)", "centralized", "speedup"
    );
    println!("{}", "-".repeat(60));
    for bytes in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let mut fog = Histogram::new();
        let mut cloud = Histogram::new();
        for section in 0..73 {
            fog.record(sim.realtime_read_f2c(section, bytes).latency);
            cloud.record(
                sim.realtime_read_centralized(section, bytes)
                    .expect("no failures injected")
                    .latency,
            );
        }
        let speedup = cloud.mean().as_secs_f64() / fog.mean().as_secs_f64();
        println!(
            "{:>10} {:>16} {:>18} {:>9.1}x",
            bytes,
            fog.mean().to_string(),
            cloud.mean().to_string(),
            speedup
        );
        assert!(
            speedup > 5.0,
            "fog must dominate ({speedup:.1}x at {bytes}B)"
        );
    }

    println!("\n== E4b: age-tiered access (local / fog-2 / cloud) ==\n");
    let local = sim.realtime_read_f2c(0, 10_000).latency;
    let recent = sim.recent_read_f2c(0, 10_000).unwrap().latency;
    let historical = sim.historical_read_f2c(0, 10_000).unwrap().latency;
    println!("  real-time at fog-1 : {local}");
    println!("  recent at fog-2    : {recent}");
    println!("  historical (cloud) : {historical}");
    assert!(local < recent && recent < historical);

    println!("\n== E4c: fault tolerance — WAN outage, edge keeps serving ==\n");
    let mut city = BarcelonaTopology::build(&LatencyProfile::default());
    // Take down every fog2->cloud link for the first hour.
    let cloud = city.cloud();
    let mut wan_links = Vec::new();
    for &f2 in city.fog2_nodes() {
        for &(peer, link) in city.network().topology().neighbors(f2) {
            if peer == cloud {
                wan_links.push(link);
            }
        }
    }
    let mut failures = citysim::net::FailurePlan::with_seed(1);
    for link in wan_links {
        failures.add_outage(link, SimTime::ZERO, SimTime::from_secs(3600));
    }
    city.network_mut().set_failures(failures);
    let mut sim = AccessSimulator::new(city);
    let local_ok = sim.realtime_read_f2c(0, 1_000);
    let cloud_err = sim.realtime_read_centralized(0, 1_000);
    println!(
        "  fog-1 real-time read during WAN outage: OK  ({})",
        local_ok.latency
    );
    println!(
        "  centralized read during WAN outage:     {:?}",
        cloud_err.err().map(|e| e.to_string())
    );
    println!("\nFog-local reads survive the outage; centralized reads do not. SHAPE OK");

    println!("\n== E4d: device radio energy, centralized (3G) vs F2C (WiFi first hop) ==\n");
    use citysim::AccessTechnology;
    let daily = 8_583_503_168u64; // Table I generation
    let centralized = AccessTechnology::Cellular3g.transmit_energy_j(daily);
    let f2c = AccessTechnology::Wifi.transmit_energy_j(daily);
    println!(
        "  centralized fleet: {:.2} MJ/day over 3G   ({:.2} kWh)",
        centralized / 1e6,
        centralized / 3.6e6
    );
    println!(
        "  F2C fleet:         {:.2} MJ/day over WiFi ({:.2} kWh)  -> {:.0}x less device energy",
        f2c / 1e6,
        f2c / 3.6e6,
        centralized / f2c
    );
    assert!(centralized / f2c > 50.0);
}
