//! The CI perf-budget gate.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`
//!
//! Parses both documents, diffs every gated metric under the shared
//! [`export::budget_rules`] tolerance set, prints an attributable line per
//! violation and exits nonzero if any bound broke. The simulation is
//! deterministic, so an unchanged tree reproduces the baseline exactly; a
//! failure here means the change regressed a budgeted metric and must
//! either be fixed or ship with a regenerated `bench/baseline.json`.
//!
//! Regenerate the baseline with:
//! `E7_REQUESTS=50000 BENCH_OUT=bench/baseline.json \
//!  cargo run --release -p f2c-bench --bin queries`

use std::process::ExitCode;

use f2c_bench::export;
use f2c_obs::{check_budget, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn run() -> Result<Vec<String>, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(current_path)) = (args.next(), args.next()) else {
        return Err("usage: perf_gate <baseline.json> <current.json>".to_string());
    };
    let baseline = load(&baseline_path)?;
    let current = load(&current_path)?;
    let rules = export::budget_rules();
    let violations = check_budget(&baseline, &current, rules);
    println!(
        "perf gate: {} metrics gated ({} vs {})",
        rules.len(),
        baseline_path,
        current_path
    );
    // Ungated info lines: the sharded runtime is byte-identical at any
    // thread count, so parallelism can never move a gated metric — but
    // the thread count and wall time explain throughput differences
    // between runs at a glance.
    for (label, doc) in [("baseline", &baseline), ("current", &current)] {
        let field = |path: &str| {
            doc.path(path)
                .and_then(Json::as_u64)
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        println!(
            "perf gate: info — {label} ran on {} worker thread(s) in {} ms (ungated)",
            field("parallel.threads"),
            field("parallel.wall_ms"),
        );
    }
    Ok(violations.iter().map(|v| v.to_string()).collect())
}

fn main() -> ExitCode {
    match run() {
        Ok(violations) if violations.is_empty() => {
            println!("perf gate: PASS — every gated metric within budget");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprintln!(
                "perf gate: FAIL — {} budget violation(s):",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "either fix the regression or regenerate bench/baseline.json \
                 (see crates/bench/src/bin/perf_gate.rs)"
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("perf gate: ERROR — {msg}");
            ExitCode::FAILURE
        }
    }
}
