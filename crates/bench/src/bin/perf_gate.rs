//! The CI perf-budget gate.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`
//!
//! Parses both documents, picks the rule set named by their `bench`
//! member (`queries` → [`export::budget_rules`], `table1` →
//! [`export::table1_budget_rules`]), diffs every gated metric under its
//! tolerance, prints an attributable line per violation and exits
//! nonzero if any bound broke. The simulation is deterministic, so an
//! unchanged tree reproduces the baseline exactly; a failure here means
//! the change regressed a budgeted metric and must either be fixed or
//! ship with a regenerated baseline.
//!
//! Beyond the baseline diff, one absolute invariant is enforced on the
//! `queries` document regardless of what the baseline says: the
//! fault-free main run must fire **zero** SLO burn-rate alerts. A fire
//! there means either the workload degraded for real or the monitor
//! broke — neither may be grandfathered in by regenerating the baseline.
//!
//! Regenerate baselines with:
//! `E7_REQUESTS=50000 BENCH_OUT=bench/baseline.json \
//!  cargo run --release -p f2c-bench --bin queries`
//! `BENCH_OUT=bench/baseline_table1.json \
//!  cargo run --release -p f2c-bench --bin table1`

use std::process::ExitCode;

use f2c_bench::export;
use f2c_obs::{check_budget, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn bench_name(doc: &Json) -> Option<&str> {
    doc.path("bench").and_then(Json::as_str)
}

fn run() -> Result<Vec<String>, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(current_path)) = (args.next(), args.next()) else {
        return Err("usage: perf_gate <baseline.json> <current.json>".to_string());
    };
    let baseline = load(&baseline_path)?;
    let current = load(&current_path)?;
    let bench = bench_name(&current)
        .ok_or_else(|| format!("{current_path} carries no `bench` member"))?
        .to_string();
    if bench_name(&baseline) != Some(bench.as_str()) {
        return Err(format!(
            "bench mismatch: {} is `{:?}`, {} is `{bench}` — gating across \
             different experiments gates nothing",
            baseline_path,
            bench_name(&baseline),
            current_path
        ));
    }
    let rules = export::budget_rules_for(Some(&bench))
        .ok_or_else(|| format!("no budget rule set for bench `{bench}`"))?;
    let mut violations: Vec<String> = check_budget(&baseline, &current, rules)
        .iter()
        .map(|v| v.to_string())
        .collect();
    println!(
        "perf gate: {} metrics gated for bench `{bench}` ({} vs {})",
        rules.len(),
        baseline_path,
        current_path
    );
    if bench == "queries" {
        // Absolute, baseline-independent: a fault-free smoke run that
        // burns SLO budget is a defect, not a drift.
        match current.path("alerts.fired").and_then(Json::as_u64) {
            Some(0) => {}
            Some(n) => violations.push(format!(
                "alerts.fired: {n} alert(s) fired during the fault-free main \
                 run (must be 0 — a fire here is a real degradation or a \
                 broken monitor, never baseline drift)"
            )),
            None => violations.push(
                "alerts.fired: missing from the current document (the \
                 fault-free run must export its alert tally)"
                    .to_string(),
            ),
        }
        // Ungated info lines: the sharded runtime is byte-identical at any
        // thread count, so parallelism can never move a gated metric — but
        // the thread count and wall time explain throughput differences
        // between runs at a glance.
        for (label, doc) in [("baseline", &baseline), ("current", &current)] {
            let field = |path: &str| {
                doc.path(path)
                    .and_then(Json::as_u64)
                    .map_or_else(|| "-".to_string(), |v| v.to_string())
            };
            println!(
                "perf gate: info — {label} ran on {} worker thread(s) in {} ms (ungated)",
                field("parallel.threads"),
                field("parallel.wall_ms"),
            );
        }
    }
    Ok(violations)
}

fn main() -> ExitCode {
    match run() {
        Ok(violations) if violations.is_empty() => {
            println!("perf gate: PASS — every gated metric within budget");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprintln!(
                "perf gate: FAIL — {} budget violation(s):",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "either fix the regression or regenerate the baseline \
                 (see crates/bench/src/bin/perf_gate.rs)"
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("perf gate: ERROR — {msg}");
            ExitCode::FAILURE
        }
    }
}
