//! The `BENCH_*.json` export pipeline and the perf-budget rule set.
//!
//! The `queries` experiment serializes its registry snapshot, per-phase
//! trace summaries and chaos incident table into one schema-versioned
//! document; CI re-runs the bench at smoke scale and the `perf_gate`
//! binary diffs the fresh document against the committed
//! `bench/baseline.json` under [`budget_rules`]. The simulation is
//! deterministic, so on an unchanged tree every gated value matches the
//! baseline exactly — the tolerances exist to absorb *intentional*
//! behavior changes, and anything beyond them ships with a regenerated
//! baseline or not at all.

use f2c_obs::{BudgetRule, HistogramSummary, Json, Snapshot, Tracer};

/// Version stamp for every `BENCH_*.json` document. Bump on any breaking
/// change to the document layout; [`f2c_obs::check_budget`] fails closed
/// on a mismatch rather than gating across incompatible schemas.
///
/// v2: per-phase `dropped` counts, the diagnosis-plane sections
/// (`explains`, `exemplars`, `alerts`, `chaos.alerts`) and the
/// second gated document `BENCH_table1.json`.
///
/// v3: the flush section gains `uplink_bytes` (what the network really
/// carried once the tsenc codec encodes both hops) and
/// `flush.bytes_per_record` is redefined over it — uplink bytes per
/// cloud-stored record — so the codec's win is the gated quantity.
pub const SCHEMA_VERSION: u64 = 3;

/// A `u64` as a JSON number (every exporter value fits in 2^53).
pub fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// A [`HistogramSummary`] as a JSON object, all durations in simulated
/// microseconds.
pub fn summary_json(s: &HistogramSummary) -> Json {
    let mut out = Json::obj();
    out.set("count", num(s.count));
    out.set("min_us", num(s.min_us));
    out.set("p50_us", num(s.p50_us));
    out.set("p90_us", num(s.p90_us));
    out.set("p99_us", num(s.p99_us));
    out.set("max_us", num(s.max_us));
    out.set("mean_us", num(s.mean_us));
    out
}

/// A full registry [`Snapshot`] as `{counters, gauges, histograms}`, every
/// series under its canonical `name{labels}` key. Keys never contain dots,
/// so `Json::path` can address them (`registry.counters.query_requests{…}`).
pub fn snapshot_json(snap: &Snapshot) -> Json {
    let mut counters = Json::obj();
    for (key, value) in &snap.counters {
        counters.set(key, num(*value));
    }
    let mut gauges = Json::obj();
    for (key, value) in &snap.gauges {
        gauges.set(key, Json::Num(*value as f64));
    }
    let mut histograms = Json::obj();
    for (key, summary) in &snap.histograms {
        histograms.set(key, summary_json(summary));
    }
    let mut out = Json::obj();
    out.set("counters", counters);
    out.set("gauges", gauges);
    out.set("histograms", histograms);
    out
}

/// Per-phase span-duration summaries pooled across every site the tracer
/// saw: `{"flush-hop": {count, p50_us, p99_us, …, dropped}, "query": …}`.
///
/// `dropped` counts the spans of that phase the ring buffers evicted to
/// make room — the exact complement of what the summary was computed
/// over, so a phase whose percentiles look suspiciously calm can be
/// checked against how much of its history fell off the ring. A phase
/// that lost *every* span still appears, with only a `dropped` count.
pub fn phases_json(tracer: &Tracer) -> Json {
    let mut out = Json::obj();
    let dropped = tracer.dropped_by_phase();
    for (name, hist) in tracer.phase_histograms() {
        let mut phase = summary_json(&HistogramSummary::of(&hist));
        phase.set("dropped", num(dropped.get(name).copied().unwrap_or(0)));
        out.set(name, phase);
    }
    for (name, n) in &dropped {
        if out.path(name).is_none() {
            let mut phase = Json::obj();
            phase.set("dropped", num(*n));
            out.set(name, phase);
        }
    }
    out
}

/// A label→count table (the incident timeline summary) as a JSON object.
pub fn counts_json<'a>(counts: impl IntoIterator<Item = (&'a str, u64)>) -> Json {
    let mut out = Json::obj();
    for (label, count) in counts {
        out.set(label, num(count));
    }
    out
}

/// The gated metric set for `BENCH_queries.json`.
///
/// Latency phases and byte costs are ceilings (a fall is an improvement);
/// answer/cache/heal rates are bands (a collapse in either direction means
/// the workload stopped exercising the machinery it claims to measure).
pub fn budget_rules() -> &'static [BudgetRule] {
    const RULES: &[BudgetRule] = &[
        // The run must stay the same experiment.
        BudgetRule::band("workload.issued", 0.01, 1.0),
        BudgetRule::band("workload.answer_rate", 0.02, 0.005),
        BudgetRule::band("workload.cache_hit_rate", 0.15, 0.01),
        BudgetRule::ceiling("workload.shed_total", 0.25, 32.0),
        BudgetRule::ceiling("workload.unanswerable", 0.25, 8.0),
        // Simulated-time latency budgets, per traced phase.
        BudgetRule::ceiling("phases.query.p99_us", 0.35, 250.0),
        BudgetRule::ceiling("phases.query-execute.p99_us", 0.35, 250.0),
        BudgetRule::ceiling("phases.query-deliver.p99_us", 0.35, 250.0),
        BudgetRule::ceiling("phases.flush-hop.p99_us", 0.35, 250.0),
        BudgetRule::ceiling("phases.scatter-leg.p99_us", 0.35, 250.0),
        // Shipping cost: bytes per stored record and the sketch channel's
        // share of the raw stream it summarizes.
        BudgetRule::ceiling("flush.bytes_per_record", 0.20, 4.0),
        BudgetRule::ceiling("flush.sketch_ratio", 0.25, 0.005),
        // The chaos scenario must keep degrading *and* healing.
        BudgetRule::ceiling("chaos.fault_shed", 0.50, 50.0),
        BudgetRule::band("chaos.incidents.hole-healed", 0.50, 4.0),
        BudgetRule::band("chaos.heal.healed", 0.50, 4.0),
        // Diagnosis plane: the fault-free main run must never burn SLO
        // budget (a fire here is a planted fault or a broken monitor —
        // perf_gate additionally hard-fails on it regardless of
        // baseline drift), while the storm must both fire and resolve.
        BudgetRule::band("alerts.fired", 0.0, 0.0),
        BudgetRule::band("chaos.alerts.fired", 0.0, 2.0),
        BudgetRule::band("chaos.alerts.resolved", 0.0, 2.0),
        // The explain reservoir and exemplar slots must keep filling.
        BudgetRule::band("explains.kept", 0.25, 4.0),
        BudgetRule::band("exemplars.kept", 0.25, 8.0),
    ];
    RULES
}

/// The gated metric set for `BENCH_table1.json`.
///
/// Table I is closed-form arithmetic over the paper's sensor inventory —
/// no simulation, no tolerance: every checkpoint must match the committed
/// baseline (which matches the paper) exactly.
pub fn table1_budget_rules() -> &'static [BudgetRule] {
    const RULES: &[BudgetRule] = &[
        BudgetRule::band("totals.sensors", 0.0, 0.0),
        BudgetRule::band("totals.wave_cloud_model", 0.0, 0.0),
        BudgetRule::band("totals.wave_fog2", 0.0, 0.0),
        BudgetRule::band("totals.daily_fog1", 0.0, 0.0),
        BudgetRule::band("totals.daily_cloud_f2c", 0.0, 0.0),
        BudgetRule::band("totals.daily_dedup_savings", 0.0, 0.0),
    ];
    RULES
}

/// The rule set for a document, keyed on its `bench` member
/// (`"queries"` → [`budget_rules`], `"table1"` →
/// [`table1_budget_rules`]). Unknown or missing names gate nothing —
/// the caller should treat that as an error rather than a pass.
pub fn budget_rules_for(bench: Option<&str>) -> Option<&'static [BudgetRule]> {
    match bench {
        Some("queries") => Some(budget_rules()),
        Some("table1") => Some(table1_budget_rules()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citysim::time::Duration;
    use f2c_obs::{check_budget, Labels, MetricsRegistry, Site};

    fn sample_doc() -> Json {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("queries_served", Labels::new().layer("fog1"));
        reg.add(c, 7);
        let g = reg.gauge("in_flight", Labels::new().layer("fog2"));
        reg.set(g, -3);
        let h = reg.histogram("latency", Labels::new());
        reg.observe(h, Duration::from_micros(400));

        let mut tracer = Tracer::new();
        let span = tracer.open(Site::new("fog1", 0), "query", 1_000);
        tracer.close(span, 1_900);

        let mut doc = Json::obj();
        doc.set("schema_version", num(SCHEMA_VERSION));
        doc.set("registry", snapshot_json(&reg.snapshot()));
        doc.set("phases", phases_json(&tracer));
        doc.set("incidents", counts_json([("hole-punched", 2u64)]));
        doc
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let doc = sample_doc();
        let parsed = Json::parse(&doc.to_pretty()).expect("parses");
        assert_eq!(
            parsed
                .path("registry.counters.queries_served{layer=fog1}")
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            parsed
                .path("registry.gauges.in_flight{layer=fog2}")
                .and_then(Json::as_f64),
            Some(-3.0)
        );
        assert_eq!(
            parsed.path("phases.query.p50_us").and_then(Json::as_u64),
            Some(900)
        );
        assert_eq!(
            parsed.path("incidents.hole-punched").and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn an_unchanged_document_passes_its_own_gate() {
        // The rule set may gate paths the sample doc lacks — restrict to
        // the shared subset to prove identical documents always pass.
        let doc = sample_doc();
        let rules: Vec<BudgetRule> = budget_rules()
            .iter()
            .filter(|r| doc.path(r.path).is_some())
            .copied()
            .collect();
        assert!(check_budget(&doc, &doc.clone(), &rules).is_empty());
    }
}
