//! Shared measurement harness for the experiment binaries and benches.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (see EXPERIMENTS.md for the index); this library holds the measurement
//! code they share — chiefly the *measured* compression ratios that replace
//! the paper's PKWARE-Zip number with this repo's own codec on the same
//! data shape.

pub mod export;

use std::collections::BTreeMap;

use scc_sensors::{wire, Catalog, Category, ReadingGenerator, SensorType};

use f2c_aggregate::RedundancyFilter;

/// Measured compression ratios (compressed/original) per category plus the
/// overall ratio, on deduped daily observation batches.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredRatios {
    /// Per-category ratio.
    pub per_category: BTreeMap<Category, f64>,
    /// Overall ratio across all categories.
    pub overall: f64,
    /// Total original bytes measured.
    pub original_bytes: u64,
    /// Total compressed bytes produced.
    pub compressed_bytes: u64,
}

impl MeasuredRatios {
    /// The paper's convention: reduction percentage.
    pub fn overall_reduction_percent(&self) -> f64 {
        (1.0 - self.overall) * 100.0
    }
}

/// Generates a deduped observation sample for every category (the data the
/// paper zipped at fog layer 1), compresses it with `f2c-compress`, and
/// reports the ratios.
///
/// `population` sensors per type and `waves` transaction waves bound the
/// sample size; 100×100 yields a few hundred kilobytes per category in a
/// few milliseconds.
pub fn measure_compression_ratios(seed: u64, population: u32, waves: u64) -> MeasuredRatios {
    let catalog = Catalog::barcelona();
    let mut per_category = BTreeMap::new();
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    for category in Category::ALL {
        let mut encoded = Vec::new();
        for ty in SensorType::ALL.iter().filter(|t| t.category() == category) {
            let spec = catalog.spec(*ty).expect("barcelona catalog is complete");
            let mut gen = ReadingGenerator::for_population(*ty, population, seed);
            let mut dedup = RedundancyFilter::new();
            let interval = spec.tx_interval_secs().max(1.0) as u64;
            for w in 0..waves {
                let kept = dedup.filter_batch(gen.wave(w * interval));
                encoded.extend_from_slice(&wire::encode_batch(&kept));
            }
        }
        let packed = f2c_compress::compress(&encoded).expect("compression is infallible here");
        per_category.insert(category, packed.len() as f64 / encoded.len().max(1) as f64);
        total_in += encoded.len() as u64;
        total_out += packed.len() as u64;
    }
    MeasuredRatios {
        per_category,
        overall: total_out as f64 / total_in.max(1) as f64,
        original_bytes: total_in,
        compressed_bytes: total_out,
    }
}

/// Pretty-prints a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_is_in_the_zip_class() {
        let r = measure_compression_ratios(7, 60, 60);
        // The paper reports ~78% reduction; any deflate-class codec on
        // Sentilo-shaped text lands in the 70–95% band.
        let reduction = r.overall_reduction_percent();
        assert!(
            (70.0..=97.0).contains(&reduction),
            "reduction {reduction:.1}% out of the zip class"
        );
        assert_eq!(r.per_category.len(), 5);
        for (cat, ratio) in &r.per_category {
            assert!(*ratio < 0.4, "{cat}: ratio {ratio:.3} too poor");
        }
    }

    #[test]
    fn ratios_are_deterministic_per_seed() {
        let a = measure_compression_ratios(1, 20, 20);
        let b = measure_compression_ratios(1, 20, 20);
        assert_eq!(a, b);
    }
}
