//! Criterion bench for E3: prints the measured compression ratios once,
//! then times the codec on Sentilo-format batches (throughput in bytes).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use f2c_bench::measure_compression_ratios;
use f2c_compress::{compress_with, decompress, Level};
use scc_sensors::{wire, ReadingGenerator, SensorType};

fn sample_batch() -> Vec<u8> {
    let mut gen = ReadingGenerator::for_population(SensorType::Weather, 500, 3);
    let mut encoded = Vec::new();
    for w in 0..40u64 {
        encoded.extend_from_slice(&wire::encode_batch(&gen.wave(w * 300)));
    }
    encoded
}

fn bench_compression(c: &mut Criterion) {
    let ratios = measure_compression_ratios(2017, 100, 100);
    println!(
        "\nmeasured compression: {} B -> {} B ({:.1}% reduction; paper: 78.3%)",
        ratios.original_bytes,
        ratios.compressed_bytes,
        ratios.overall_reduction_percent()
    );

    let data = sample_batch();
    let packed = compress_with(&data, Level::Default).unwrap();
    println!(
        "bench batch: {} B -> {} B ({:.1}% reduction)\n",
        data.len(),
        packed.len(),
        (1.0 - packed.len() as f64 / data.len() as f64) * 100.0
    );

    let mut group = c.benchmark_group("compression");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (name, level) in [
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        group.bench_function(format!("compress/{name}"), |b| {
            b.iter(|| black_box(compress_with(black_box(&data), level).unwrap()))
        });
    }
    group.bench_function("decompress", |b| {
        b.iter(|| black_box(decompress(black_box(&packed)).unwrap()))
    });
    group.bench_function("crc32", |b| {
        b.iter(|| black_box(f2c_compress::crc32::checksum(black_box(&data))))
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
