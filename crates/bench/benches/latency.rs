//! Criterion bench for E4: prints the fog-vs-cloud latency comparison
//! once, then times the access-path computations (routing + metering).

use citysim::barcelona::{BarcelonaTopology, LatencyProfile};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use f2c_core::request::AccessSimulator;

fn bench_latency(c: &mut Criterion) {
    let mut sim = AccessSimulator::new(BarcelonaTopology::build(&LatencyProfile::default()));
    let fog = sim.realtime_read_f2c(0, 1_000);
    let cloud = sim.realtime_read_centralized(0, 1_000).unwrap();
    println!(
        "\nreal-time read, 1 KB: fog-1 {} vs centralized {} ({:.1}x)\n",
        fog.latency,
        cloud.latency,
        cloud.latency.as_secs_f64() / fog.latency.as_secs_f64()
    );

    c.bench_function("latency/realtime_f2c", |b| {
        b.iter(|| black_box(sim.realtime_read_f2c(black_box(7), 1_000)))
    });
    c.bench_function("latency/realtime_centralized", |b| {
        b.iter(|| black_box(sim.realtime_read_centralized(black_box(7), 1_000).unwrap()))
    });
    c.bench_function("latency/historical_f2c", |b| {
        b.iter(|| black_box(sim.historical_read_f2c(black_box(7), 1_000).unwrap()))
    });
    c.bench_function("latency/topology_build", |b| {
        b.iter(|| black_box(BarcelonaTopology::build(&LatencyProfile::default())))
    });
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
