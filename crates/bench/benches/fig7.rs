//! Criterion bench for E2: prints the regenerated Fig. 7 once, then times
//! the fig7 computation and the dedup filter it models (readings/second
//! through redundant-data elimination at fog layer 1).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use f2c_aggregate::RedundancyFilter;
use f2c_core::report::render_fig7;
use f2c_core::traffic::TrafficModel;
use scc_sensors::{ReadingGenerator, SensorType};

fn bench_fig7(c: &mut Criterion) {
    let model = TrafficModel::paper();
    println!("\n{}", render_fig7(&model.fig7_rows()));

    c.bench_function("fig7/rows", |b| b.iter(|| black_box(model.fig7_rows())));

    // The operation Fig. 7 models: dedup over an observation stream.
    let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 1_000, 7);
    let waves: Vec<Vec<scc_sensors::Reading>> = (0..20).map(|w| gen.wave(w * 900)).collect();
    let total: u64 = waves.iter().map(|w| w.len() as u64).sum();
    let mut group = c.benchmark_group("fig7/dedup");
    group.throughput(Throughput::Elements(total));
    group.bench_function("filter_20k_readings", |b| {
        b.iter(|| {
            let mut filter = RedundancyFilter::new();
            let mut kept = 0usize;
            for wave in &waves {
                for r in wave {
                    if filter.admit(black_box(r)) {
                        kept += 1;
                    }
                }
            }
            black_box(kept)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
