//! Criterion bench for E7: serving-path costs of the query engine —
//! edge-cache hits vs planner+store execution, point vs aggregate, and
//! the per-class QoS admission ledger on the hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use f2c_core::runtime::populate_city;
use f2c_core::{F2cCity, Layer};
use f2c_query::{
    plan, ClassLedger, EngineConfig, QosPolicy, Query, QueryEngine, QueryKind, Scope, Selector,
    ServiceClass, TimeWindow,
};
use scc_sensors::{Category, SensorType};

fn warm_engine() -> QueryEngine {
    let mut city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut city, 20_000, 7, 2 * 3_600, 900).expect("warm-up runs");
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    engine.flush_all(2 * 3_600).expect("settling flush");
    engine
}

fn bench_queries(c: &mut Criterion) {
    let mut engine = warm_engine();
    let now = 2 * 3_600 + 10;
    let district = engine.city().district_of(21);
    let dashboard = Query {
        origin: 21,
        class: ServiceClass::Dashboard,
        selector: Selector::Category(Category::Urban),
        scope: Scope::District(district),
        window: TimeWindow::new(0, 2 * 3_600),
        kind: QueryKind::Aggregate,
    };
    let realtime = Query {
        origin: 21,
        class: ServiceClass::RealTime,
        selector: Selector::Type(SensorType::Traffic),
        scope: Scope::Section(21),
        window: TimeWindow::new(0, now),
        kind: QueryKind::Point,
    };

    c.bench_function("queries/plan", |b| {
        b.iter(|| black_box(plan(engine.city(), black_box(&dashboard)).unwrap()))
    });
    // First serve fills the caches; iterations then measure the hit path.
    engine.serve_sync(&dashboard, now).unwrap();
    c.bench_function("queries/edge_cache_hit", |b| {
        b.iter(|| black_box(engine.serve_sync(black_box(&dashboard), now).unwrap()))
    });
    c.bench_function("queries/point_local_store", |b| {
        let mut shift = 0u64;
        b.iter(|| {
            // A moving window defeats the result cache, so every
            // iteration pays the reverse scan.
            shift += 1;
            let q = Query {
                window: TimeWindow::new(shift % 600, now),
                ..realtime
            };
            black_box(engine.serve_sync(&q, now).unwrap())
        })
    });
    c.bench_function("queries/aggregate_cold_window", |b| {
        let mut shift = 0u64;
        b.iter(|| {
            shift += 1;
            let q = Query {
                window: TimeWindow::new(shift % 3_600, 2 * 3_600),
                ..dashboard
            };
            black_box(engine.serve_sync(&q, now).unwrap())
        })
    });
    c.bench_function("queries/city_scatter_gather", |b| {
        let mut shift = 0u64;
        b.iter(|| {
            // Both window ends move so the window shapes (3600 × 3599
            // combinations) outlast any measurement: every iteration
            // misses the gather-node result cache, fans out over the
            // ten district fog-2 legs and merges the partials.
            shift += 1;
            let q = Query {
                scope: Scope::City,
                class: ServiceClass::CityWide,
                window: TimeWindow::new(shift % 3_600, 3_601 + (shift % 3_599)),
                ..dashboard
            };
            black_box(engine.serve_sync(&q, now).unwrap())
        })
    });
}

/// The class-aware admission ledger sits on every store execution, so
/// its acquire/release cycle must stay trivially cheap: one single-slot
/// grant plus a ten-leg fan-out grant per iteration, with the quota and
/// borrow arithmetic of all four classes exercised.
fn bench_qos(c: &mut Criterion) {
    let mut ledger = ClassLedger::new([4_096, 256, 64], &QosPolicy::default());
    c.bench_function("qos/admit_release", |b| {
        b.iter(|| {
            ledger
                .try_acquire(ServiceClass::RealTime, [1, 0, 0])
                .unwrap();
            ledger
                .try_acquire(ServiceClass::CityWide, [0, 10, 0])
                .unwrap();
            ledger.release(ServiceClass::RealTime, [1, 0, 0]);
            ledger.release(ServiceClass::CityWide, [0, 10, 0]);
            black_box(ledger.layer_total(Layer::Fog2))
        })
    });
}

criterion_group!(benches, bench_queries, bench_qos);
criterion_main!(benches);
