//! Criterion bench for E6/E7: prints one ablation row set, then times the
//! end-to-end simulation kernel at a tiny scale plus the placement engine.

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use f2c_core::placement::{PlacementEngine, ServiceSpec};
use f2c_core::runtime::{simulate, SimConfig};

fn tiny_config() -> SimConfig {
    let mut config = SimConfig::paper_scaled();
    config.scale = 50_000;
    config.horizon_s = 3_600;
    config
}

fn bench_ablation(c: &mut Criterion) {
    let report = simulate(tiny_config()).unwrap();
    println!(
        "\ntiny-scale hour: {} readings, dedup {:.1}%, compression ratio {:.3}\n",
        report.generated_readings,
        report.dedup_rate() * 100.0,
        report.compression_ratio()
    );

    c.bench_function("ablation/simulate_hour_tiny", |b| {
        b.iter(|| black_box(simulate(tiny_config()).unwrap()))
    });

    let engine = PlacementEngine::new(LatencyProfile::default());
    let specs = [
        ServiceSpec::realtime_critical(Duration::from_millis(10)),
        ServiceSpec::deep_analytics(),
    ];
    c.bench_function("ablation/placement", |b| {
        b.iter(|| {
            for spec in &specs {
                black_box(engine.place(black_box(spec)).unwrap());
            }
        })
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
