//! Criterion bench for E1: prints the regenerated Table I once, then times
//! the analytic traffic model (the kernel every harness relies on).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use f2c_core::report::render_table1;
use f2c_core::traffic::TrafficModel;

fn bench_table1(c: &mut Criterion) {
    let model = TrafficModel::paper();
    println!(
        "\n{}",
        render_table1(&model.table1_rows(), &model.table1_totals())
    );

    c.bench_function("table1/rows", |b| b.iter(|| black_box(model.table1_rows())));
    c.bench_function("table1/totals", |b| {
        b.iter(|| black_box(model.table1_totals()))
    });
    c.bench_function("table1/category_totals", |b| {
        b.iter(|| {
            for cat in scc_sensors::Category::ALL {
                black_box(model.table1_category_totals(cat));
            }
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
