use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from catalog construction and wire parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A sensor type was added to a catalog twice.
    DuplicateType {
        /// The offending type's display name.
        name: String,
    },
    /// A type spec had a zero field that must be positive.
    InvalidSpec {
        /// The offending type's display name.
        name: String,
        /// Which field was invalid.
        field: &'static str,
    },
    /// A wire-format observation line could not be parsed.
    MalformedObservation {
        /// The offending line (possibly truncated).
        line: String,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateType { name } => {
                write!(f, "sensor type {name:?} already present in catalog")
            }
            Error::InvalidSpec { name, field } => {
                write!(f, "type spec for {name:?} has invalid {field}")
            }
            Error::MalformedObservation { line, reason } => {
                write!(f, "malformed observation line {line:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = Error::InvalidSpec {
            name: "Temperature".into(),
            field: "sensors",
        };
        let msg = e.to_string();
        assert!(msg.contains("Temperature") && msg.contains("sensors"));
    }
}
