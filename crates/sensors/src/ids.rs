//! Identifier newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SensorType;

/// Globally unique sensor identifier: a sensor type plus an index within
/// that type's population.
///
/// # Examples
///
/// ```
/// use scc_sensors::{SensorId, SensorType};
///
/// let id = SensorId::new(SensorType::Temperature, 42);
/// assert_eq!(id.sensor_type(), SensorType::Temperature);
/// assert_eq!(id.index(), 42);
/// assert_eq!(id.to_string(), "temp#42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SensorId {
    ty: SensorType,
    index: u32,
}

impl SensorId {
    /// Creates an id for the `index`-th sensor of `ty`.
    pub fn new(ty: SensorType, index: u32) -> Self {
        Self { ty, index }
    }

    /// The sensor's type.
    pub fn sensor_type(self) -> SensorType {
        self.ty
    }

    /// Index within the type's population.
    pub fn index(self) -> u32 {
        self.index
    }

    /// A stable 64-bit hash of the id, used to derive per-sensor RNG seeds.
    pub fn seed_material(self) -> u64 {
        // Position in SensorType::ALL is stable by construction.
        let ty_ord = SensorType::ALL
            .iter()
            .position(|&t| t == self.ty)
            .expect("type present in ALL") as u64;
        (ty_ord << 40) ^ u64::from(self.index)
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.ty.slug(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_type_then_index() {
        let a = SensorId::new(SensorType::ElectricityMeter, 5);
        let b = SensorId::new(SensorType::ElectricityMeter, 9);
        let c = SensorId::new(SensorType::GasMeter, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn seed_material_is_unique_across_types_and_indices() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for ty in SensorType::ALL {
            for idx in [0u32, 1, 77, 1_000_000] {
                assert!(seen.insert(SensorId::new(ty, idx).seed_material()));
            }
        }
    }

    #[test]
    fn display_roundtrips_through_slug() {
        let id = SensorId::new(SensorType::AirQuality, 7);
        assert_eq!(id.to_string(), "airq#7");
    }
}
