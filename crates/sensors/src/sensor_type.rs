//! The 21 sensor types of Table I.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Category;

/// One of the 21 sensor types the Sentilo platform exposes (Table I).
///
/// The paper names every type except the three noise types ("the noise
/// category includes three different types of information"); we label those
/// by deployment zone. Each type knows its [`Category`] and a short
/// machine-readable slug used in wire encodings.
// Deliberately exhaustive: the 21 types are a closed set fixed by Table I,
// and downstream crates (quality bounds, value models) match on all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SensorType {
    // --- Energy monitoring -------------------------------------------------
    /// Household/office electricity meter.
    ElectricityMeter,
    /// External ambient conditions station.
    ExternalAmbientConditions,
    /// Gas meter.
    GasMeter,
    /// Internal ambient conditions station.
    InternalAmbientConditions,
    /// Power-quality network analyzer (the large 242-byte payload).
    NetworkAnalyzer,
    /// Solar thermal installation monitor.
    SolarThermalInstallation,
    /// Temperature probe.
    Temperature,
    // --- Noise monitoring ---------------------------------------------------
    /// Ambient noise meter (low-frequency reporting).
    NoiseAmbient,
    /// Traffic-zone noise meter (minute-resolution reporting).
    NoiseTrafficZone,
    /// Leisure-zone noise meter (minute-resolution reporting).
    NoiseLeisureZone,
    // --- Garbage collection -------------------------------------------------
    /// Glass container fill sensor.
    ContainerGlass,
    /// Organic-waste container fill sensor.
    ContainerOrganic,
    /// Paper container fill sensor.
    ContainerPaper,
    /// Plastic container fill sensor.
    ContainerPlastic,
    /// Refuse container fill sensor.
    ContainerRefuse,
    // --- Parking -------------------------------------------------------------
    /// Parking spot occupancy sensor.
    ParkingSpot,
    // --- Urban Lab -----------------------------------------------------------
    /// Air quality station.
    AirQuality,
    /// Bicycle flow counter.
    BicycleFlow,
    /// People flow counter.
    PeopleFlow,
    /// Traffic intensity sensor.
    Traffic,
    /// Weather station.
    Weather,
}

impl SensorType {
    /// All sensor types in Table I order.
    pub const ALL: [SensorType; 21] = [
        SensorType::ElectricityMeter,
        SensorType::ExternalAmbientConditions,
        SensorType::GasMeter,
        SensorType::InternalAmbientConditions,
        SensorType::NetworkAnalyzer,
        SensorType::SolarThermalInstallation,
        SensorType::Temperature,
        SensorType::NoiseAmbient,
        SensorType::NoiseTrafficZone,
        SensorType::NoiseLeisureZone,
        SensorType::ContainerGlass,
        SensorType::ContainerOrganic,
        SensorType::ContainerPaper,
        SensorType::ContainerPlastic,
        SensorType::ContainerRefuse,
        SensorType::ParkingSpot,
        SensorType::AirQuality,
        SensorType::BicycleFlow,
        SensorType::PeopleFlow,
        SensorType::Traffic,
        SensorType::Weather,
    ];

    /// The category this type belongs to.
    pub fn category(self) -> Category {
        use SensorType::*;
        match self {
            ElectricityMeter
            | ExternalAmbientConditions
            | GasMeter
            | InternalAmbientConditions
            | NetworkAnalyzer
            | SolarThermalInstallation
            | Temperature => Category::Energy,
            NoiseAmbient | NoiseTrafficZone | NoiseLeisureZone => Category::Noise,
            ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic
            | ContainerRefuse => Category::Garbage,
            ParkingSpot => Category::Parking,
            AirQuality | BicycleFlow | PeopleFlow | Traffic | Weather => Category::Urban,
        }
    }

    /// Short machine-readable slug (used by [`crate::wire`]).
    pub fn slug(self) -> &'static str {
        use SensorType::*;
        match self {
            ElectricityMeter => "elec",
            ExternalAmbientConditions => "extamb",
            GasMeter => "gas",
            InternalAmbientConditions => "intamb",
            NetworkAnalyzer => "netan",
            SolarThermalInstallation => "solar",
            Temperature => "temp",
            NoiseAmbient => "noise-amb",
            NoiseTrafficZone => "noise-traf",
            NoiseLeisureZone => "noise-leis",
            ContainerGlass => "cont-glass",
            ContainerOrganic => "cont-org",
            ContainerPaper => "cont-paper",
            ContainerPlastic => "cont-plast",
            ContainerRefuse => "cont-ref",
            ParkingSpot => "parking",
            AirQuality => "airq",
            BicycleFlow => "bikeflow",
            PeopleFlow => "peopleflow",
            Traffic => "traffic",
            Weather => "weather",
        }
    }

    /// Parses a slug produced by [`SensorType::slug`].
    pub fn from_slug(slug: &str) -> Option<SensorType> {
        SensorType::ALL.iter().copied().find(|t| t.slug() == slug)
    }
}

impl fmt::Display for SensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SensorType::*;
        let name = match self {
            ElectricityMeter => "Electricity meter",
            ExternalAmbientConditions => "External ambient conditions",
            GasMeter => "Gas meter",
            InternalAmbientConditions => "Internal ambient conditions",
            NetworkAnalyzer => "Network analyzer",
            SolarThermalInstallation => "Solar thermal installation",
            Temperature => "Temperature",
            NoiseAmbient => "Noise (ambient)",
            NoiseTrafficZone => "Noise (traffic zone)",
            NoiseLeisureZone => "Noise (leisure zone)",
            ContainerGlass => "Container glass",
            ContainerOrganic => "Container organic",
            ContainerPaper => "Container paper",
            ContainerPlastic => "Container plastic",
            ContainerRefuse => "Container refuse",
            ParkingSpot => "Parking",
            AirQuality => "Air quality",
            BicycleFlow => "Bicycle flow",
            PeopleFlow => "People flow",
            Traffic => "Traffic",
            Weather => "Weather",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_types_in_five_categories() {
        assert_eq!(SensorType::ALL.len(), 21);
        let per_cat = |c: Category| SensorType::ALL.iter().filter(|t| t.category() == c).count();
        assert_eq!(per_cat(Category::Energy), 7);
        assert_eq!(per_cat(Category::Noise), 3);
        assert_eq!(per_cat(Category::Garbage), 5);
        assert_eq!(per_cat(Category::Parking), 1);
        assert_eq!(per_cat(Category::Urban), 5);
    }

    #[test]
    fn slugs_are_unique_and_parse_back() {
        let mut slugs: Vec<&str> = SensorType::ALL.iter().map(|t| t.slug()).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), 21);
        for t in SensorType::ALL {
            assert_eq!(SensorType::from_slug(t.slug()), Some(t));
        }
        assert_eq!(SensorType::from_slug("nope"), None);
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = SensorType::ALL.iter().map(|t| t.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 21);
    }
}
