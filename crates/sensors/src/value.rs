//! Observation values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The measured value carried by one [`crate::Reading`].
///
/// Values are comparable for *exact* equality — that is what redundant-data
/// elimination (the paper's first aggregation technique) keys on: "each
/// sensor sends the current temperature measurements, but this type of data
/// is prone to repetitions" (§V.A). Floats are wrapped in a fixed-point
/// representation so equality is well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A scalar measurement with 2 fixed decimal places (value × 100).
    Scalar(i64),
    /// A monotone counter (meter readings, flow counts).
    Counter(u64),
    /// A binary state (parking occupancy).
    Flag(bool),
    /// A percentage level 0–100 (container fill).
    Level(u8),
    /// A multi-field measurement (network analyzer, weather station):
    /// field values with 2 fixed decimal places, in a fixed field order.
    Composite(Vec<i64>),
}

impl Value {
    /// Builds a scalar from a float, keeping 2 decimal places.
    pub fn from_f64(v: f64) -> Self {
        Value::Scalar((v * 100.0).round() as i64)
    }

    /// The scalar as a float, if this is a `Scalar`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Scalar(raw) => Some(*raw as f64 / 100.0),
            _ => None,
        }
    }

    /// A single numeric magnitude for analysis phases: scalars and levels
    /// map to their value, counters to their count, flags to 0/1, and
    /// composites to their first field (by convention, the primary channel).
    pub fn magnitude(&self) -> f64 {
        match self {
            Value::Scalar(raw) => *raw as f64 / 100.0,
            Value::Counter(c) => *c as f64,
            Value::Flag(b) => f64::from(u8::from(*b)),
            Value::Level(l) => f64::from(*l),
            Value::Composite(fields) => fields.first().map_or(0.0, |&v| v as f64 / 100.0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(raw) => write!(f, "{:.2}", *raw as f64 / 100.0),
            Value::Counter(c) => write!(f, "{c}"),
            Value::Flag(b) => write!(f, "{}", u8::from(*b)),
            Value::Level(l) => write!(f, "{l}%"),
            Value::Composite(fields) => {
                let mut first = true;
                for v in fields {
                    if !first {
                        f.write_str("|")?;
                    }
                    write!(f, "{:.2}", *v as f64 / 100.0)?;
                    first = false;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_roundtrip() {
        let v = Value::from_f64(21.57);
        assert_eq!(v.as_f64(), Some(21.57));
        assert_eq!(v, Value::Scalar(2157));
    }

    #[test]
    fn equality_is_exact_after_quantization() {
        // 21.571 and 21.574 quantize to the same stored value -> redundant.
        assert_eq!(Value::from_f64(21.571), Value::from_f64(21.574));
        assert_ne!(Value::from_f64(21.57), Value::from_f64(21.58));
    }

    #[test]
    fn magnitude_covers_all_variants() {
        assert_eq!(Value::from_f64(3.5).magnitude(), 3.5);
        assert_eq!(Value::Counter(17).magnitude(), 17.0);
        assert_eq!(Value::Flag(true).magnitude(), 1.0);
        assert_eq!(Value::Level(73).magnitude(), 73.0);
        assert_eq!(Value::Composite(vec![250, 100]).magnitude(), 2.5);
        assert_eq!(Value::Composite(vec![]).magnitude(), 0.0);
    }

    #[test]
    fn display_forms_are_compact() {
        assert_eq!(Value::from_f64(21.5).to_string(), "21.50");
        assert_eq!(Value::Counter(9).to_string(), "9");
        assert_eq!(Value::Flag(false).to_string(), "0");
        assert_eq!(Value::Level(40).to_string(), "40%");
        assert_eq!(Value::Composite(vec![100, 250]).to_string(), "1.00|2.50");
    }
}
