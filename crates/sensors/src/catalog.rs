//! Deployment catalogs: how many sensors of each type exist and how they
//! report. [`Catalog::barcelona`] encodes Table I of the paper verbatim.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Category, Error, Result, SensorType};

/// Deployment description for one sensor type.
///
/// `daily_bytes_per_sensor` is authoritative (Table I's right-hand block);
/// the implied transactions/day is derived and may be fractional — the
/// paper's noise type 1 reports 22 B/transaction but 768 B/day, i.e. ≈34.9
/// transactions/day (see DESIGN.md, "known inconsistencies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeSpec {
    ty: SensorType,
    sensors: u64,
    tx_bytes: u64,
    daily_bytes_per_sensor: u64,
}

impl TypeSpec {
    /// Creates a spec; all fields must be positive.
    pub fn new(
        ty: SensorType,
        sensors: u64,
        tx_bytes: u64,
        daily_bytes_per_sensor: u64,
    ) -> Result<Self> {
        for (field, v) in [
            ("sensors", sensors),
            ("tx_bytes", tx_bytes),
            ("daily_bytes_per_sensor", daily_bytes_per_sensor),
        ] {
            if v == 0 {
                return Err(Error::InvalidSpec {
                    name: ty.to_string(),
                    field,
                });
            }
        }
        Ok(Self {
            ty,
            sensors,
            tx_bytes,
            daily_bytes_per_sensor,
        })
    }

    /// The sensor type described.
    pub fn sensor_type(&self) -> SensorType {
        self.ty
    }

    /// The type's category.
    pub fn category(&self) -> Category {
        self.ty.category()
    }

    /// Number of deployed sensors of this type.
    pub fn sensors(&self) -> u64 {
        self.sensors
    }

    /// Bytes one sensor sends per transaction.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Bytes one sensor sends per day.
    pub fn daily_bytes_per_sensor(&self) -> u64 {
        self.daily_bytes_per_sensor
    }

    /// Implied transactions per sensor per day (possibly fractional).
    pub fn tx_per_day(&self) -> f64 {
        self.daily_bytes_per_sensor as f64 / self.tx_bytes as f64
    }

    /// Mean seconds between two transactions of one sensor.
    pub fn tx_interval_secs(&self) -> f64 {
        86_400.0 / self.tx_per_day()
    }

    /// Bytes all sensors of this type send in one transaction wave.
    pub fn wave_bytes(&self) -> u64 {
        self.sensors * self.tx_bytes
    }

    /// Bytes all sensors of this type send per day.
    pub fn daily_bytes(&self) -> u64 {
        self.sensors * self.daily_bytes_per_sensor
    }
}

/// A full deployment catalog: one [`TypeSpec`] per sensor type.
///
/// # Examples
///
/// ```
/// use scc_sensors::{Catalog, Category};
///
/// let catalog = Catalog::barcelona();
/// let energy: u64 = catalog
///     .specs_in(Category::Energy)
///     .map(|s| s.daily_bytes())
///     .sum();
/// assert_eq!(energy, 2_539_023_168); // Table I energy total per day
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Catalog {
    specs: BTreeMap<SensorType, TypeSpec>,
}

impl Catalog {
    /// The future-Barcelona deployment of Table I.
    ///
    /// Totals: 1,005,019 sensors; 54,388,158 B per transaction wave;
    /// 8,583,503,168 B/day (the "≈8 GB per day" estimate of §II).
    pub fn barcelona() -> Self {
        use SensorType::*;
        let rows: [(SensorType, u64, u64, u64); 21] = [
            // (type, sensors, bytes/tx, bytes/day per sensor)
            (ElectricityMeter, 70_717, 22, 2_112),
            (ExternalAmbientConditions, 70_717, 22, 2_112),
            (GasMeter, 70_717, 22, 2_112),
            (InternalAmbientConditions, 70_717, 22, 2_112),
            (NetworkAnalyzer, 70_717, 242, 23_232),
            (SolarThermalInstallation, 70_717, 22, 2_112),
            (Temperature, 70_717, 22, 2_112),
            (NoiseAmbient, 10_000, 22, 768),
            (NoiseTrafficZone, 10_000, 22, 31_680),
            (NoiseLeisureZone, 10_000, 22, 31_680),
            (ContainerGlass, 40_000, 50, 1_800),
            (ContainerOrganic, 40_000, 50, 1_800),
            (ContainerPaper, 40_000, 50, 1_800),
            (ContainerPlastic, 40_000, 50, 1_800),
            (ContainerRefuse, 40_000, 50, 1_800),
            (ParkingSpot, 80_000, 40, 4_000),
            (AirQuality, 40_000, 144, 13_824),
            (BicycleFlow, 40_000, 22, 3_168),
            (PeopleFlow, 40_000, 22, 3_168),
            (Traffic, 40_000, 44, 63_360),
            (Weather, 40_000, 120, 34_560),
        ];
        let mut b = CatalogBuilder::new();
        for (ty, sensors, tx, daily) in rows {
            b = b
                .with_spec(TypeSpec::new(ty, sensors, tx, daily).expect("table row valid"))
                .expect("no duplicates in table");
        }
        b.build()
    }

    /// Starts building a custom catalog.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::new()
    }

    /// Spec for one sensor type, if present.
    pub fn spec(&self, ty: SensorType) -> Option<&TypeSpec> {
        self.specs.get(&ty)
    }

    /// Iterates all specs in [`SensorType`] order.
    pub fn iter(&self) -> impl Iterator<Item = &TypeSpec> {
        self.specs.values()
    }

    /// Iterates specs belonging to `category`.
    pub fn specs_in(&self, category: Category) -> impl Iterator<Item = &TypeSpec> + '_ {
        self.specs
            .values()
            .filter(move |s| s.category() == category)
    }

    /// Number of sensor types present.
    pub fn type_count(&self) -> usize {
        self.specs.len()
    }

    /// Total deployed sensors.
    pub fn total_sensors(&self) -> u64 {
        self.specs.values().map(TypeSpec::sensors).sum()
    }

    /// Total bytes of one transaction wave (every sensor sends once).
    pub fn total_wave_bytes(&self) -> u64 {
        self.specs.values().map(TypeSpec::wave_bytes).sum()
    }

    /// Total bytes generated per day, across all sensors.
    pub fn total_daily_bytes(&self) -> u64 {
        self.specs.values().map(TypeSpec::daily_bytes).sum()
    }

    /// Sensors in `category`.
    pub fn sensors_in(&self, category: Category) -> u64 {
        self.specs_in(category).map(TypeSpec::sensors).sum()
    }

    /// Daily bytes generated by `category`.
    pub fn daily_bytes_in(&self, category: Category) -> u64 {
        self.specs_in(category).map(TypeSpec::daily_bytes).sum()
    }

    /// Returns a proportionally scaled-down copy for event-driven
    /// simulation: sensor counts are divided by `factor` (minimum 1 sensor
    /// per type kept). Per-sensor rates are unchanged, so traffic scales by
    /// ≈`1/factor` and can be scaled back analytically.
    pub fn scaled_down(&self, factor: u64) -> Self {
        assert!(factor >= 1, "scale factor must be >= 1");
        let specs = self
            .specs
            .values()
            .map(|s| {
                let scaled = TypeSpec {
                    ty: s.ty,
                    sensors: (s.sensors / factor).max(1),
                    tx_bytes: s.tx_bytes,
                    daily_bytes_per_sensor: s.daily_bytes_per_sensor,
                };
                (s.ty, scaled)
            })
            .collect();
        Self { specs }
    }
}

impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a TypeSpec;
    type IntoIter = std::collections::btree_map::Values<'a, SensorType, TypeSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.values()
    }
}

/// Builder for custom catalogs ([`Catalog::barcelona`] covers the paper's).
#[derive(Debug, Clone, Default)]
pub struct CatalogBuilder {
    specs: BTreeMap<SensorType, TypeSpec>,
}

impl CatalogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a spec.
    ///
    /// # Errors
    ///
    /// [`Error::DuplicateType`] if the type is already present.
    pub fn with_spec(mut self, spec: TypeSpec) -> Result<Self> {
        if self.specs.contains_key(&spec.sensor_type()) {
            return Err(Error::DuplicateType {
                name: spec.sensor_type().to_string(),
            });
        }
        self.specs.insert(spec.sensor_type(), spec);
        Ok(self)
    }

    /// Finishes the catalog.
    pub fn build(self) -> Catalog {
        Catalog { specs: self.specs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barcelona_grand_totals_match_table_1() {
        let c = Catalog::barcelona();
        assert_eq!(c.type_count(), 21);
        assert_eq!(c.total_sensors(), 1_005_019);
        assert_eq!(c.total_wave_bytes(), 54_388_158);
        assert_eq!(c.total_daily_bytes(), 8_583_503_168);
    }

    #[test]
    fn barcelona_category_totals_match_table_1() {
        let c = Catalog::barcelona();
        // Sensors per category.
        assert_eq!(c.sensors_in(Category::Energy), 495_019);
        assert_eq!(c.sensors_in(Category::Noise), 30_000);
        assert_eq!(c.sensors_in(Category::Garbage), 200_000);
        assert_eq!(c.sensors_in(Category::Parking), 80_000);
        assert_eq!(c.sensors_in(Category::Urban), 200_000);
        // Daily bytes per category.
        assert_eq!(c.daily_bytes_in(Category::Energy), 2_539_023_168);
        assert_eq!(c.daily_bytes_in(Category::Noise), 641_280_000);
        assert_eq!(c.daily_bytes_in(Category::Garbage), 360_000_000);
        assert_eq!(c.daily_bytes_in(Category::Parking), 320_000_000);
        assert_eq!(c.daily_bytes_in(Category::Urban), 4_723_200_000);
    }

    #[test]
    fn barcelona_wave_totals_per_category() {
        let c = Catalog::barcelona();
        let wave = |cat| c.specs_in(cat).map(TypeSpec::wave_bytes).sum::<u64>();
        assert_eq!(wave(Category::Energy), 26_448_158);
        assert_eq!(wave(Category::Noise), 660_000);
        assert_eq!(wave(Category::Garbage), 10_000_000);
        assert_eq!(wave(Category::Parking), 3_200_000);
        assert_eq!(wave(Category::Urban), 14_080_000);
    }

    #[test]
    fn per_type_rows_match_table_1() {
        let c = Catalog::barcelona();
        let s = c.spec(SensorType::NetworkAnalyzer).unwrap();
        assert_eq!(s.wave_bytes(), 17_113_514);
        assert_eq!(s.daily_bytes(), 1_642_897_344);
        let s = c.spec(SensorType::Traffic).unwrap();
        assert_eq!(s.wave_bytes(), 1_760_000);
        assert_eq!(s.daily_bytes(), 2_534_400_000);
        assert!((s.tx_per_day() - 1440.0).abs() < 1e-9);
        let s = c.spec(SensorType::ParkingSpot).unwrap();
        assert_eq!(s.daily_bytes(), 320_000_000);
        assert!((s.tx_per_day() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn noise_ambient_fractional_frequency_is_preserved() {
        // The paper's internally inconsistent row: 22 B/tx, 768 B/day.
        let c = Catalog::barcelona();
        let s = c.spec(SensorType::NoiseAmbient).unwrap();
        assert_eq!(s.daily_bytes_per_sensor(), 768);
        assert!((s.tx_per_day() - 768.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_duplicates() {
        let spec = TypeSpec::new(SensorType::Temperature, 10, 22, 220).unwrap();
        let b = CatalogBuilder::new().with_spec(spec).unwrap();
        assert!(matches!(
            b.with_spec(spec),
            Err(Error::DuplicateType { .. })
        ));
    }

    #[test]
    fn spec_rejects_zero_fields() {
        assert!(TypeSpec::new(SensorType::Temperature, 0, 22, 220).is_err());
        assert!(TypeSpec::new(SensorType::Temperature, 10, 0, 220).is_err());
        assert!(TypeSpec::new(SensorType::Temperature, 10, 22, 0).is_err());
    }

    #[test]
    fn scaled_down_divides_population_not_rates() {
        let c = Catalog::barcelona().scaled_down(1000);
        let s = c.spec(SensorType::ElectricityMeter).unwrap();
        assert_eq!(s.sensors(), 70);
        assert_eq!(s.tx_bytes(), 22);
        assert_eq!(s.daily_bytes_per_sensor(), 2_112);
        // Tiny populations are kept at >= 1 sensor.
        let tiny = Catalog::barcelona().scaled_down(1_000_000_000);
        assert!(tiny.iter().all(|s| s.sensors() == 1));
    }

    #[test]
    fn tx_interval_matches_frequency() {
        let c = Catalog::barcelona();
        let s = c.spec(SensorType::ElectricityMeter).unwrap();
        // 96 tx/day -> every 900 seconds (15 minutes).
        assert!((s.tx_interval_secs() - 900.0).abs() < 1e-9);
    }
}
