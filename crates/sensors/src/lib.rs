//! Smart-city sensor substrate for the F2C reproduction.
//!
//! The paper's experiment (§V.B, Table I) is driven by the **Sentilo**
//! platform's five sensor categories in Barcelona — energy, noise, garbage,
//! parking and urban — with published per-type sensor counts, message sizes,
//! message frequencies, and per-category redundancy rates. Sentilo's real
//! feeds are not public, so this crate is the substitution: a synthetic
//! catalog that encodes Table I verbatim plus deterministic generators that
//! produce observation streams with exactly the published redundancy
//! characteristics.
//!
//! * [`Category`] / [`SensorType`] — the 5 categories and 21 sensor types,
//! * [`Catalog`] / [`TypeSpec`] — deployment descriptions ([`Catalog::barcelona`]
//!   is Table I),
//! * [`Reading`] / [`Value`] — one observation,
//! * [`generator`] — per-sensor value models with tunable redundancy,
//! * [`wire`] — Sentilo-style text encoding of observations.
//!
//! # Quickstart
//!
//! ```
//! use scc_sensors::{Catalog, SensorType};
//!
//! let catalog = Catalog::barcelona();
//! assert_eq!(catalog.total_sensors(), 1_005_019);
//! assert_eq!(catalog.total_daily_bytes(), 8_583_503_168); // ≈ 8 GB/day
//!
//! let spec = catalog.spec(SensorType::ElectricityMeter).unwrap();
//! assert_eq!(spec.sensors(), 70_717);
//! assert_eq!(spec.tx_bytes(), 22);
//! ```

pub mod catalog;
pub mod category;
mod error;
pub mod generator;
pub mod ids;
pub mod reading;
pub mod rngutil;
pub mod sensor_type;
pub mod sources;
pub mod value;
pub mod wire;

pub use catalog::{Catalog, CatalogBuilder, TypeSpec};
pub use category::Category;
pub use error::{Error, Result};
pub use generator::{ReadingGenerator, SensorStream, TimeCorrelatedStream};
pub use ids::SensorId;
pub use reading::Reading;
pub use sensor_type::SensorType;
pub use value::Value;
