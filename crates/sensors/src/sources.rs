//! Non-infrastructure data sources (§I, §IV.A): *participatory sensing* —
//! "sensors integrated in citizens' smartphones" — which roams between
//! city sections, and *third-party feeds* — "data collected from web
//! services or third party applications … collected at cloud level,
//! \[which\] will be a small data set compared to the vast volumes of sensor
//! generated data".

use rand::Rng;

use crate::rngutil::derive_rng;
use crate::{Reading, SensorId, SensorStream, SensorType};

/// A fleet of citizen smartphones contributing noise measurements while
/// moving through the city's sections.
///
/// # Examples
///
/// ```
/// use scc_sensors::sources::ParticipatorySource;
///
/// let mut phones = ParticipatorySource::new(100, 73, 42);
/// let contributions = phones.tick(0);
/// assert_eq!(contributions.len(), 100);
/// assert!(contributions.iter().all(|(section, _)| *section < 73));
/// ```
#[derive(Debug, Clone)]
pub struct ParticipatorySource {
    devices: Vec<Device>,
    sections: u16,
    move_probability: f64,
    rng: rand::rngs::SmallRng,
}

#[derive(Debug, Clone)]
struct Device {
    stream: SensorStream,
    section: u16,
}

impl ParticipatorySource {
    /// `devices` smartphones spread over `sections`, deterministic in
    /// `seed`. Each tick a device moves to an adjacent section with
    /// probability 0.3 (people walk).
    ///
    /// # Panics
    ///
    /// Panics if `sections` is zero.
    pub fn new(devices: u32, sections: u16, seed: u64) -> Self {
        assert!(sections > 0, "need at least one section");
        let mut rng = derive_rng(seed, 0x5048_4F4E_4553); // "PHONES"
        let devices = (0..devices)
            .map(|i| Device {
                stream: SensorStream::new(SensorId::new(SensorType::NoiseAmbient, i), seed),
                section: rng.gen_range(0..sections),
            })
            .collect();
        Self {
            devices,
            sections,
            move_probability: 0.3,
            rng,
        }
    }

    /// Number of participating devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// One reporting round at `now_s`: every device contributes a reading
    /// attributed to its *current* section, then possibly moves.
    pub fn tick(&mut self, now_s: u64) -> Vec<(u16, Reading)> {
        let mut out = Vec::with_capacity(self.devices.len());
        for device in &mut self.devices {
            out.push((device.section, device.stream.next_reading(now_s)));
            if self.rng.gen_bool(self.move_probability) {
                // Walk to a neighboring section (ring of sections).
                let step: i32 = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                let s = i32::from(device.section) + step;
                device.section = s.rem_euclid(i32::from(self.sections)) as u16;
            }
        }
        out
    }

    /// Current section of each device (diagnostics).
    pub fn sections_of_devices(&self) -> Vec<u16> {
        self.devices.iter().map(|d| d.section).collect()
    }
}

/// A third-party web feed (e.g. a weather API) polled at the cloud.
///
/// Volumes are intentionally tiny relative to the sensor network — the
/// paper's point is exactly that such feeds do not change the traffic
/// picture.
#[derive(Debug, Clone)]
pub struct ThirdPartyFeed {
    ty: SensorType,
    stream: SensorStream,
    records_per_poll: u32,
}

impl ThirdPartyFeed {
    /// A feed of `ty` records, `records_per_poll` per poll.
    ///
    /// # Panics
    ///
    /// Panics if `records_per_poll` is zero.
    pub fn new(ty: SensorType, records_per_poll: u32, seed: u64) -> Self {
        assert!(records_per_poll > 0, "a feed must produce something");
        Self {
            ty,
            stream: SensorStream::with_redundancy(
                SensorId::new(ty, u32::MAX), // a virtual provider id
                seed,
                0.0,
            ),
            records_per_poll,
        }
    }

    /// The feed's record type.
    pub fn feed_type(&self) -> SensorType {
        self.ty
    }

    /// One poll at `now_s`.
    pub fn poll(&mut self, now_s: u64) -> Vec<Reading> {
        (0..self.records_per_poll)
            .map(|i| self.stream.next_reading(now_s + u64::from(i)))
            .collect()
    }

    /// Daily byte estimate at `polls_per_day`, using Table I accounting for
    /// the feed's type.
    pub fn daily_bytes_estimate(&self, polls_per_day: u64, tx_bytes: u64) -> u64 {
        polls_per_day * u64::from(self.records_per_poll) * tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;

    #[test]
    fn devices_spread_over_sections_and_move() {
        let mut src = ParticipatorySource::new(200, 73, 7);
        let before = src.sections_of_devices();
        for t in 0..20 {
            src.tick(t * 60);
        }
        let after = src.sections_of_devices();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved > 100, "only {moved}/200 devices moved in 20 ticks");
        assert!(after.iter().all(|&s| s < 73));
    }

    #[test]
    fn participatory_readings_are_noise_measurements() {
        let mut src = ParticipatorySource::new(10, 5, 1);
        for (_, reading) in src.tick(0) {
            assert_eq!(reading.sensor_type(), SensorType::NoiseAmbient);
            let v = reading.value().as_f64().expect("noise is scalar");
            assert!((25.0..=115.0).contains(&v));
        }
    }

    #[test]
    fn participatory_source_is_deterministic() {
        let mut a = ParticipatorySource::new(50, 73, 9);
        let mut b = ParticipatorySource::new(50, 73, 9);
        for t in 0..10 {
            assert_eq!(a.tick(t * 30), b.tick(t * 30));
        }
    }

    #[test]
    fn third_party_feed_is_small_relative_to_the_sensor_network() {
        let feed = ThirdPartyFeed::new(SensorType::Weather, 100, 3);
        // Hourly polls of 100 records at weather's 120 B/record.
        let daily = feed.daily_bytes_estimate(24, 120);
        let network = Catalog::barcelona().total_daily_bytes();
        assert!(
            daily * 1000 < network,
            "feed {daily} B/day should be vanishing vs network {network} B/day"
        );
    }

    #[test]
    fn feed_produces_parseable_readings() {
        let mut feed = ThirdPartyFeed::new(SensorType::AirQuality, 5, 2);
        let batch = feed.poll(1_000);
        assert_eq!(batch.len(), 5);
        for r in &batch {
            let line = crate::wire::encode(r);
            assert_eq!(crate::wire::parse(&line).unwrap(), *r);
        }
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn zero_sections_rejected() {
        ParticipatorySource::new(1, 0, 0);
    }
}
