//! Sentilo-style textual wire encoding of observations.
//!
//! Sentilo transports observations as small text messages (provider /
//! sensor / value / timestamp). The compression experiment (§V.B) operates
//! on accumulated files of such messages, so the encoding here is what the
//! [`f2c-compress`](../../compress) codec is measured against.
//!
//! Format (one observation per line):
//!
//! ```text
//! PROVIDER.type-slug.index;timestamp;value
//! ```

use crate::{Error, Reading, Result, SensorId, SensorType, Value};

/// Encodes one reading as a wire line (no trailing newline).
///
/// # Examples
///
/// ```
/// use scc_sensors::{wire, Reading, SensorId, SensorType, Value};
///
/// let r = Reading::new(SensorId::new(SensorType::Temperature, 7), 900, Value::from_f64(21.5));
/// assert_eq!(wire::encode(&r), "ENERGY.temp.7;900;21.50");
/// ```
pub fn encode(reading: &Reading) -> String {
    let ty = reading.sensor_type();
    format!(
        "{}.{}.{};{};{}",
        ty.category().provider(),
        ty.slug(),
        reading.sensor().index(),
        reading.timestamp_s(),
        reading.value()
    )
}

/// Encodes a batch of readings, one line each, newline-terminated.
pub fn encode_batch(readings: &[Reading]) -> Vec<u8> {
    let mut out = Vec::with_capacity(readings.len() * 32);
    for r in readings {
        out.extend_from_slice(encode(r).as_bytes());
        out.push(b'\n');
    }
    out
}

/// Parses one wire line back into a [`Reading`].
///
/// The value grammar is disambiguated by the sensor type (flags for parking,
/// counters for meters/flows, levels for containers, composites for
/// multi-channel stations, scalars otherwise).
///
/// # Errors
///
/// [`Error::MalformedObservation`] on any structural or numeric violation.
pub fn parse(line: &str) -> Result<Reading> {
    let bad = |reason: &'static str| Error::MalformedObservation {
        line: line.chars().take(80).collect(),
        reason,
    };
    let mut parts = line.trim_end().split(';');
    let head = parts.next().ok_or_else(|| bad("missing head"))?;
    let ts_str = parts.next().ok_or_else(|| bad("missing timestamp"))?;
    let val_str = parts.next().ok_or_else(|| bad("missing value"))?;
    if parts.next().is_some() {
        return Err(bad("too many fields"));
    }

    let mut head_parts = head.split('.');
    let provider = head_parts.next().ok_or_else(|| bad("missing provider"))?;
    let slug = head_parts.next().ok_or_else(|| bad("missing type slug"))?;
    let index_str = head_parts.next().ok_or_else(|| bad("missing index"))?;
    if head_parts.next().is_some() {
        return Err(bad("too many head fields"));
    }
    let ty = SensorType::from_slug(slug).ok_or_else(|| bad("unknown type slug"))?;
    if ty.category().provider() != provider {
        return Err(bad("provider does not match type"));
    }
    let index: u32 = index_str.parse().map_err(|_| bad("bad index"))?;
    let timestamp: u64 = ts_str.parse().map_err(|_| bad("bad timestamp"))?;
    let value = parse_value(ty, val_str).ok_or_else(|| bad("bad value"))?;
    Ok(Reading::new(SensorId::new(ty, index), timestamp, value))
}

/// Parses every line of a batch produced by [`encode_batch`].
pub fn parse_batch(data: &[u8]) -> Result<Vec<Reading>> {
    let text = std::str::from_utf8(data).map_err(|_| Error::MalformedObservation {
        line: String::from("<non-utf8>"),
        reason: "batch is not UTF-8",
    })?;
    text.lines().map(parse).collect()
}

fn parse_value(ty: SensorType, s: &str) -> Option<Value> {
    use SensorType::*;
    match ty {
        ParkingSpot => match s {
            "0" => Some(Value::Flag(false)),
            "1" => Some(Value::Flag(true)),
            _ => None,
        },
        ElectricityMeter | GasMeter | BicycleFlow | PeopleFlow | Traffic => {
            s.parse::<u64>().ok().map(Value::Counter)
        }
        ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic | ContainerRefuse => {
            let level = s.strip_suffix('%')?;
            let l: u8 = level.parse().ok()?;
            (l <= 100).then_some(Value::Level(l))
        }
        NetworkAnalyzer | AirQuality | Weather => {
            let fields: Option<Vec<i64>> = s
                .split('|')
                .map(|f| {
                    let v: f64 = f.parse().ok()?;
                    Some((v * 100.0).round() as i64)
                })
                .collect();
            fields.map(Value::Composite)
        }
        _ => {
            let v: f64 = s.parse().ok()?;
            Some(Value::from_f64(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadingGenerator;

    #[test]
    fn roundtrip_every_sensor_type() {
        for ty in SensorType::ALL {
            let mut g = ReadingGenerator::for_population(ty, 3, 11);
            for wave_t in 0..5u64 {
                for r in g.wave(wave_t * 900) {
                    let line = encode(&r);
                    let back = parse(&line).unwrap_or_else(|e| panic!("{ty}: {e}"));
                    assert_eq!(back, r, "{ty}: {line}");
                }
            }
        }
    }

    #[test]
    fn batch_roundtrip() {
        let mut g = ReadingGenerator::for_population(SensorType::Weather, 20, 3);
        let wave = g.wave(0);
        let bytes = encode_batch(&wave);
        let back = parse_batch(&bytes).unwrap();
        assert_eq!(back, wave);
    }

    #[test]
    fn malformed_lines_error_not_panic() {
        for line in [
            "",
            "x",
            "ENERGY.temp.7",
            "ENERGY.temp.7;900",
            "ENERGY.temp.7;900;21.5;extra",
            "BOGUS.temp.7;900;21.5",
            "ENERGY.nope.7;900;21.5",
            "ENERGY.temp.x;900;21.5",
            "ENERGY.temp.7;notatime;21.5",
            "ENERGY.temp.7;900;notanumber",
            "PARKING.parking.1;0;2",
            "GARBAGE.cont-glass.1;0;150%",
            "GARBAGE.cont-glass.1;0;73",
        ] {
            assert!(parse(line).is_err(), "should reject {line:?}");
        }
    }

    #[test]
    fn wire_lines_are_compact() {
        // The paper's small types report ~22 bytes per transaction; the
        // natural text encoding must stay in that ballpark for the
        // compression experiment to be representative.
        let r = Reading::new(
            SensorId::new(SensorType::Temperature, 70_000),
            86_399,
            Value::from_f64(21.5),
        );
        let line = encode(&r);
        assert!(line.len() <= 40, "line too long: {line}");
    }

    #[test]
    fn provider_mismatch_is_rejected() {
        assert!(parse("NOISE.temp.7;900;21.50").is_err());
    }
}
