//! A single sensor observation.

use serde::{Deserialize, Serialize};

use crate::{SensorId, SensorType, Value};

/// One observation: who measured what, when.
///
/// Timestamps are seconds since the start of the simulated day (or epoch —
/// the substrate does not care, only ordering and age computations do).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reading {
    sensor: SensorId,
    timestamp_s: u64,
    value: Value,
}

impl Reading {
    /// Creates a reading.
    pub fn new(sensor: SensorId, timestamp_s: u64, value: Value) -> Self {
        Self {
            sensor,
            timestamp_s,
            value,
        }
    }

    /// The reporting sensor.
    pub fn sensor(&self) -> SensorId {
        self.sensor
    }

    /// The sensor's type.
    pub fn sensor_type(&self) -> SensorType {
        self.sensor.sensor_type()
    }

    /// Observation time, seconds.
    pub fn timestamp_s(&self) -> u64 {
        self.timestamp_s
    }

    /// The measured value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Whether `other` is a redundant repetition of this reading: same
    /// sensor, same value (timestamps may differ — that is the point).
    pub fn is_redundant_with(&self, other: &Reading) -> bool {
        self.sensor == other.sensor && self.value == other.value
    }

    /// Age of this reading at time `now_s`, saturating at zero.
    pub fn age_at(&self, now_s: u64) -> u64 {
        now_s.saturating_sub(self.timestamp_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> SensorId {
        SensorId::new(SensorType::Temperature, 1)
    }

    #[test]
    fn redundancy_ignores_timestamp() {
        let a = Reading::new(id(), 100, Value::from_f64(20.0));
        let b = Reading::new(id(), 160, Value::from_f64(20.0));
        let c = Reading::new(id(), 160, Value::from_f64(20.1));
        assert!(a.is_redundant_with(&b));
        assert!(!a.is_redundant_with(&c));
    }

    #[test]
    fn redundancy_requires_same_sensor() {
        let a = Reading::new(
            SensorId::new(SensorType::Temperature, 1),
            0,
            Value::Flag(true),
        );
        let b = Reading::new(
            SensorId::new(SensorType::Temperature, 2),
            0,
            Value::Flag(true),
        );
        assert!(!a.is_redundant_with(&b));
    }

    #[test]
    fn age_saturates() {
        let r = Reading::new(id(), 500, Value::Counter(1));
        assert_eq!(r.age_at(800), 300);
        assert_eq!(r.age_at(100), 0);
    }
}
