//! Deterministic observation generators with calibrated redundancy.
//!
//! The paper's redundant-data elimination results (Table I) hinge on one
//! empirical property per category: the fraction of observations whose value
//! repeats the sensor's previous report (energy 50 %, noise 75 %, garbage
//! 70 %, parking 40 %, urban 30 %). [`SensorStream`] produces value
//! sequences with exactly that repeat probability on top of a per-type value
//! model, so the dedup filter downstream measures the published rates and
//! the simulation cross-validates the analytic traffic model.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::rngutil::derive_rng;
use crate::{Reading, SensorId, SensorType, Value};

/// Internal per-sensor value evolution model.
#[derive(Debug, Clone)]
enum ValueModel {
    /// Bounded random walk with fixed-point output (temperature, noise…).
    RandomWalk {
        value: f64,
        min: f64,
        max: f64,
        step: f64,
    },
    /// Monotonically increasing counter (meters, flow totals).
    Counter { value: u64, max_increment: u64 },
    /// Binary occupancy (parking).
    Occupancy { occupied: bool },
    /// Container fill level 0–100 %, emptied when full.
    Fill { level: u8, max_increment: u8 },
    /// Multi-channel measurement (network analyzer, air quality, weather).
    Composite {
        values: Vec<f64>,
        min: f64,
        max: f64,
        step: f64,
    },
}

impl ValueModel {
    fn for_type(ty: SensorType, rng: &mut SmallRng) -> Self {
        use SensorType::*;
        match ty {
            Temperature
            | ExternalAmbientConditions
            | InternalAmbientConditions
            | SolarThermalInstallation => ValueModel::RandomWalk {
                value: rng.gen_range(5.0..30.0),
                min: -10.0,
                max: 55.0,
                step: 0.5,
            },
            NoiseAmbient | NoiseTrafficZone | NoiseLeisureZone => ValueModel::RandomWalk {
                value: rng.gen_range(35.0..80.0),
                min: 25.0,
                max: 115.0,
                step: 2.0,
            },
            ElectricityMeter | GasMeter => ValueModel::Counter {
                value: rng.gen_range(0..50_000),
                max_increment: 40,
            },
            BicycleFlow | PeopleFlow | Traffic => ValueModel::Counter {
                value: 0,
                max_increment: 120,
            },
            ParkingSpot => ValueModel::Occupancy {
                occupied: rng.gen_bool(0.5),
            },
            ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic
            | ContainerRefuse => ValueModel::Fill {
                level: rng.gen_range(0..60),
                max_increment: 7,
            },
            NetworkAnalyzer => ValueModel::Composite {
                values: (0..11).map(|_| rng.gen_range(210.0..240.0)).collect(),
                min: 0.0,
                max: 500.0,
                step: 3.0,
            },
            AirQuality => ValueModel::Composite {
                values: (0..6).map(|_| rng.gen_range(5.0..80.0)).collect(),
                min: 0.0,
                max: 500.0,
                step: 4.0,
            },
            Weather => ValueModel::Composite {
                values: (0..5).map(|_| rng.gen_range(0.0..30.0)).collect(),
                min: -20.0,
                max: 120.0,
                step: 1.5,
            },
        }
    }

    /// Advances to a *new* value, guaranteed different from the previous
    /// emitted value so the repeat probability is controlled exclusively by
    /// the stream's redundancy parameter.
    fn advance(&mut self, rng: &mut SmallRng, previous: Option<&Value>) -> Value {
        for _ in 0..16 {
            let candidate = self.step_once(rng);
            if previous != Some(&candidate) {
                return candidate;
            }
        }
        // Pathological corner (e.g. walk pinned at a bound): force change.
        self.force_distinct(previous)
    }

    fn step_once(&mut self, rng: &mut SmallRng) -> Value {
        match self {
            ValueModel::RandomWalk {
                value,
                min,
                max,
                step,
            } => {
                *value += rng.gen_range(-*step..=*step);
                *value = value.clamp(*min, *max);
                Value::from_f64(*value)
            }
            ValueModel::Counter {
                value,
                max_increment,
            } => {
                *value += rng.gen_range(1..=*max_increment);
                Value::Counter(*value)
            }
            ValueModel::Occupancy { occupied } => {
                *occupied = !*occupied;
                Value::Flag(*occupied)
            }
            ValueModel::Fill {
                level,
                max_increment,
            } => {
                let inc = rng.gen_range(1..=*max_increment);
                let next = u16::from(*level) + u16::from(inc);
                *level = if next >= 100 { 0 } else { next as u8 };
                Value::Level(*level)
            }
            ValueModel::Composite {
                values,
                min,
                max,
                step,
            } => {
                for v in values.iter_mut() {
                    *v += rng.gen_range(-*step..=*step);
                    *v = v.clamp(*min, *max);
                }
                Value::Composite(values.iter().map(|v| (v * 100.0).round() as i64).collect())
            }
        }
    }

    fn force_distinct(&mut self, previous: Option<&Value>) -> Value {
        match self {
            ValueModel::RandomWalk {
                value, min, max, ..
            } => {
                *value = if (*value - *min).abs() < 1.0 {
                    *max
                } else {
                    *min
                };
                let v = Value::from_f64(*value);
                debug_assert!(previous != Some(&v));
                v
            }
            ValueModel::Counter { value, .. } => {
                *value += 1;
                Value::Counter(*value)
            }
            ValueModel::Occupancy { occupied } => {
                // step_once always flips, so this is unreachable in practice.
                Value::Flag(*occupied)
            }
            ValueModel::Fill { level, .. } => {
                *level = if *level == 0 { 1 } else { 0 };
                Value::Level(*level)
            }
            ValueModel::Composite { values, max, .. } => {
                if let Some(first) = values.first_mut() {
                    *first = if (*first - *max).abs() < 0.01 {
                        *max - 1.0
                    } else {
                        *max
                    };
                }
                Value::Composite(values.iter().map(|v| (v * 100.0).round() as i64).collect())
            }
        }
    }
}

/// Deterministic observation stream for one sensor.
///
/// # Examples
///
/// ```
/// use scc_sensors::{SensorStream, SensorId, SensorType};
///
/// let id = SensorId::new(SensorType::Temperature, 0);
/// let mut a = SensorStream::new(id, 42);
/// let mut b = SensorStream::new(id, 42);
/// assert_eq!(a.next_reading(0), b.next_reading(0)); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SensorStream {
    id: SensorId,
    rng: SmallRng,
    redundancy: f64,
    model: ValueModel,
    last: Option<Value>,
}

impl SensorStream {
    /// Creates a stream whose repeat probability is the sensor category's
    /// published redundancy rate.
    pub fn new(id: SensorId, root_seed: u64) -> Self {
        let redundancy = f64::from(id.sensor_type().category().redundancy_percent()) / 100.0;
        Self::with_redundancy(id, root_seed, redundancy)
    }

    /// Creates a stream with an explicit repeat probability in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy` is not in `[0, 1)`.
    pub fn with_redundancy(id: SensorId, root_seed: u64, redundancy: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&redundancy),
            "redundancy must be in [0,1), got {redundancy}"
        );
        let mut rng = derive_rng(root_seed, id.seed_material());
        let model = ValueModel::for_type(id.sensor_type(), &mut rng);
        Self {
            id,
            rng,
            redundancy,
            model,
            last: None,
        }
    }

    /// The stream's sensor id.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The configured repeat probability.
    pub fn redundancy(&self) -> f64 {
        self.redundancy
    }

    /// Produces the observation at `timestamp_s`.
    pub fn next_reading(&mut self, timestamp_s: u64) -> Reading {
        let value = match &self.last {
            Some(prev) if self.rng.gen_bool(self.redundancy) => prev.clone(),
            prev_opt => {
                let prev = prev_opt.clone();
                self.model.advance(&mut self.rng, prev.as_ref())
            }
        };
        self.last = Some(value.clone());
        Reading::new(self.id, timestamp_s, value)
    }
}

/// Generates observation waves for a whole population of one sensor type.
///
/// # Examples
///
/// ```
/// use scc_sensors::{ReadingGenerator, SensorType};
///
/// let mut g = ReadingGenerator::for_population(SensorType::ParkingSpot, 100, 7);
/// let wave = g.wave(0);
/// assert_eq!(wave.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct ReadingGenerator {
    streams: Vec<SensorStream>,
}

impl ReadingGenerator {
    /// A population of `count` sensors of type `ty`, category redundancy.
    pub fn for_population(ty: SensorType, count: u32, root_seed: u64) -> Self {
        let streams = (0..count)
            .map(|i| SensorStream::new(SensorId::new(ty, i), root_seed))
            .collect();
        Self { streams }
    }

    /// Same, with an explicit redundancy override.
    pub fn for_population_with_redundancy(
        ty: SensorType,
        count: u32,
        root_seed: u64,
        redundancy: f64,
    ) -> Self {
        let streams = (0..count)
            .map(|i| SensorStream::with_redundancy(SensorId::new(ty, i), root_seed, redundancy))
            .collect();
        Self { streams }
    }

    /// Number of sensors in the population.
    pub fn population(&self) -> usize {
        self.streams.len()
    }

    /// One transaction wave: every sensor reports once at `timestamp_s`.
    pub fn wave(&mut self, timestamp_s: u64) -> Vec<Reading> {
        self.streams
            .iter_mut()
            .map(|s| s.next_reading(timestamp_s))
            .collect()
    }
}

/// A *time-correlated* observation stream: instead of a fixed per-wave
/// repeat probability, the underlying phenomenon changes as a Poisson
/// process with mean lifetime `tau_s`. Two consecutive samples `dt`
/// seconds apart repeat with probability `exp(-dt / tau_s)` — so sampling
/// *faster* yields *more* redundancy, which is exactly the physics behind
/// §IV.D's claim that the collection frequency can be raised at fog 1
/// while dedup absorbs the extra traffic.
#[derive(Debug, Clone)]
pub struct TimeCorrelatedStream {
    id: SensorId,
    rng: SmallRng,
    model: ValueModel,
    tau_s: f64,
    last: Option<(u64, Value)>,
}

impl TimeCorrelatedStream {
    /// A stream whose phenomenon has mean lifetime `tau_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `tau_s` is positive and finite.
    pub fn new(id: SensorId, root_seed: u64, tau_s: f64) -> Self {
        assert!(
            tau_s.is_finite() && tau_s > 0.0,
            "tau must be positive, got {tau_s}"
        );
        let mut rng = derive_rng(root_seed, id.seed_material() ^ 0x7C0D);
        let model = ValueModel::for_type(id.sensor_type(), &mut rng);
        Self {
            id,
            rng,
            model,
            tau_s,
            last: None,
        }
    }

    /// Calibrates `tau` so that sampling every `reference_interval_s`
    /// reproduces the sensor category's Table-I redundancy rate:
    /// `exp(-interval/tau) = redundancy  ⇒  tau = -interval / ln(redundancy)`.
    pub fn calibrated(id: SensorId, root_seed: u64, reference_interval_s: f64) -> Self {
        let redundancy = f64::from(id.sensor_type().category().redundancy_percent()) / 100.0;
        let tau = -reference_interval_s / redundancy.ln();
        Self::new(id, root_seed, tau)
    }

    /// The phenomenon's mean lifetime.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    /// Produces the observation at `timestamp_s` (timestamps must be
    /// non-decreasing; equal timestamps always repeat).
    pub fn next_reading(&mut self, timestamp_s: u64) -> Reading {
        let value = match &self.last {
            Some((t0, prev)) => {
                let dt = timestamp_s.saturating_sub(*t0) as f64;
                let p_repeat = (-dt / self.tau_s).exp();
                if self.rng.gen_bool(p_repeat.clamp(0.0, 1.0)) {
                    prev.clone()
                } else {
                    let prev = prev.clone();
                    self.model.advance(&mut self.rng, Some(&prev))
                }
            }
            None => self.model.advance(&mut self.rng, None),
        };
        self.last = Some((timestamp_s, value.clone()));
        Reading::new(self.id, timestamp_s, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn measured_redundancy(ty: SensorType, waves: usize, pop: u32) -> f64 {
        let mut g = ReadingGenerator::for_population(ty, pop, 1234);
        let mut last: Vec<Option<Value>> = vec![None; pop as usize];
        let mut repeats = 0usize;
        let mut total = 0usize;
        for w in 0..waves {
            for (i, r) in g.wave(w as u64 * 60).into_iter().enumerate() {
                if last[i].as_ref() == Some(r.value()) {
                    repeats += 1;
                }
                if last[i].is_some() {
                    total += 1;
                }
                last[i] = Some(r.value().clone());
            }
        }
        repeats as f64 / total as f64
    }

    #[test]
    fn redundancy_matches_category_rate() {
        for (ty, cat) in [
            (SensorType::Temperature, Category::Energy),
            (SensorType::NoiseTrafficZone, Category::Noise),
            (SensorType::ContainerGlass, Category::Garbage),
            (SensorType::ParkingSpot, Category::Parking),
            (SensorType::Weather, Category::Urban),
        ] {
            let target = f64::from(cat.redundancy_percent()) / 100.0;
            let measured = measured_redundancy(ty, 50, 200);
            assert!(
                (measured - target).abs() < 0.03,
                "{ty}: measured {measured:.3}, target {target:.3}"
            );
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let id = SensorId::new(SensorType::AirQuality, 3);
        let mut a = SensorStream::new(id, 99);
        let mut b = SensorStream::new(id, 99);
        for t in 0..50 {
            assert_eq!(a.next_reading(t), b.next_reading(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let id = SensorId::new(SensorType::Temperature, 3);
        let mut a = SensorStream::new(id, 1);
        let mut b = SensorStream::new(id, 2);
        let same = (0..50)
            .filter(|&t| a.next_reading(t) == b.next_reading(t))
            .count();
        assert!(
            same < 40,
            "independent seeds should diverge, {same}/50 equal"
        );
    }

    #[test]
    fn counters_are_monotone() {
        let id = SensorId::new(SensorType::ElectricityMeter, 0);
        let mut s = SensorStream::with_redundancy(id, 5, 0.0);
        let mut prev = 0u64;
        for t in 0..200 {
            if let Value::Counter(c) = s.next_reading(t).value() {
                assert!(*c >= prev);
                prev = *c;
            } else {
                panic!("meter must emit counters");
            }
        }
    }

    #[test]
    fn walks_stay_in_bounds() {
        let id = SensorId::new(SensorType::NoiseLeisureZone, 0);
        let mut s = SensorStream::with_redundancy(id, 5, 0.0);
        for t in 0..2000 {
            let r = s.next_reading(t);
            let v = r.value().as_f64().expect("noise is scalar");
            assert!((25.0..=115.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn zero_redundancy_never_repeats() {
        for ty in [
            SensorType::Temperature,
            SensorType::ParkingSpot,
            SensorType::ContainerPaper,
            SensorType::NetworkAnalyzer,
        ] {
            let id = SensorId::new(ty, 0);
            let mut s = SensorStream::with_redundancy(id, 77, 0.0);
            let mut prev: Option<Value> = None;
            for t in 0..500 {
                let r = s.next_reading(t);
                assert_ne!(prev.as_ref(), Some(r.value()), "{ty} repeated at t={t}");
                prev = Some(r.value().clone());
            }
        }
    }

    #[test]
    fn composite_field_counts_are_stable() {
        let id = SensorId::new(SensorType::NetworkAnalyzer, 0);
        let mut s = SensorStream::new(id, 3);
        for t in 0..20 {
            match s.next_reading(t).value() {
                Value::Composite(fields) => assert_eq!(fields.len(), 11),
                other => panic!("expected composite, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_redundancy_panics() {
        let id = SensorId::new(SensorType::Temperature, 0);
        assert!(std::panic::catch_unwind(|| {
            SensorStream::with_redundancy(id, 0, 1.0);
        })
        .is_err());
    }

    fn measured_repeat_rate(interval_s: u64, samples: u64) -> f64 {
        let mut repeats = 0u64;
        let mut total = 0u64;
        for sensor in 0..50u32 {
            let id = SensorId::new(SensorType::Temperature, sensor);
            let mut s = TimeCorrelatedStream::calibrated(id, 99, 900.0);
            let mut prev: Option<Value> = None;
            for k in 0..samples {
                let r = s.next_reading(k * interval_s);
                if prev.as_ref() == Some(r.value()) {
                    repeats += 1;
                }
                if prev.is_some() {
                    total += 1;
                }
                prev = Some(r.value().clone());
            }
        }
        repeats as f64 / total as f64
    }

    #[test]
    fn time_correlated_stream_reproduces_table1_rate_at_reference_interval() {
        // Energy: 50% redundancy at the 900 s reference interval.
        let rate = measured_repeat_rate(900, 200);
        assert!(
            (rate - 0.5).abs() < 0.04,
            "rate {rate:.3} at reference interval"
        );
    }

    #[test]
    fn faster_sampling_yields_more_redundancy() {
        // Halving the interval raises the repeat probability to
        // exp(-450/tau) = sqrt(0.5) ≈ 0.707.
        let rate = measured_repeat_rate(450, 200);
        assert!(
            (rate - 0.707).abs() < 0.04,
            "rate {rate:.3} at half interval"
        );
        // And 4x sampling: exp(-225/tau) = 0.5^(1/4) ≈ 0.841.
        let rate = measured_repeat_rate(225, 400);
        assert!(
            (rate - 0.841).abs() < 0.04,
            "rate {rate:.3} at quarter interval"
        );
    }

    #[test]
    fn time_correlated_stream_is_deterministic() {
        let id = SensorId::new(SensorType::ParkingSpot, 3);
        let mut a = TimeCorrelatedStream::calibrated(id, 5, 864.0);
        let mut b = TimeCorrelatedStream::calibrated(id, 5, 864.0);
        for t in 0..100u64 {
            assert_eq!(a.next_reading(t * 100), b.next_reading(t * 100));
        }
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn degenerate_tau_panics() {
        TimeCorrelatedStream::new(SensorId::new(SensorType::Weather, 0), 0, 0.0);
    }
}
