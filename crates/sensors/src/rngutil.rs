//! Deterministic RNG derivation.
//!
//! Every experiment in the repo must be reproducible run-to-run, so all
//! randomness flows from explicit seeds. Per-sensor streams derive their own
//! seed from (experiment seed, sensor id) via SplitMix64, so adding or
//! removing sensors never perturbs other sensors' streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard seed-expansion permutation.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG from a root seed and a stream discriminator.
///
/// # Examples
///
/// ```
/// use scc_sensors::rngutil::derive_rng;
/// use rand::Rng;
///
/// let mut a = derive_rng(42, 7);
/// let mut b = derive_rng(42, 7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same derivation -> same stream
/// ```
pub fn derive_rng(root_seed: u64, stream: u64) -> SmallRng {
    let mixed = splitmix64(root_seed ^ splitmix64(stream));
    SmallRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 2);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 3);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Distinct inputs map to distinct outputs on a sample.
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
