//! The five Sentilo information categories.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Sentilo category of information and services (§V.B).
///
/// Each category carries the redundancy rate the paper measured for it —
/// the fraction of observations that redundant-data elimination removes at
/// fog layer 1 (Table I / Fig. 7): energy ≈50 %, noise ≈75 %, garbage ≈70 %,
/// parking ≈40 %, urban ≈30 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Energy monitoring (meters, ambient conditions, solar, temperature).
    Energy,
    /// Noise monitoring.
    Noise,
    /// Garbage collection (container fill levels).
    Garbage,
    /// Parking spot occupancy.
    Parking,
    /// Urban Lab monitoring (air quality, flows, traffic, weather).
    Urban,
}

impl Category {
    /// All categories, in the paper's table order.
    pub const ALL: [Category; 5] = [
        Category::Energy,
        Category::Noise,
        Category::Garbage,
        Category::Parking,
        Category::Urban,
    ];

    /// Percentage of observations that are redundant (Table I).
    pub fn redundancy_percent(self) -> u8 {
        match self {
            Category::Energy => 50,
            Category::Noise => 75,
            Category::Garbage => 70,
            Category::Parking => 40,
            Category::Urban => 30,
        }
    }

    /// Fraction of observations that *survive* redundant-data elimination.
    pub fn keep_fraction(self) -> f64 {
        f64::from(100 - u32::from(self.redundancy_percent())) / 100.0
    }

    /// Applies the category's redundancy reduction to a byte count, using
    /// exact integer arithmetic (Table I's entries are all exact).
    pub fn reduce_bytes(self, bytes: u64) -> u64 {
        let keep = 100 - u64::from(self.redundancy_percent());
        bytes * keep / 100
    }

    /// Sentilo-style provider name for the category.
    pub fn provider(self) -> &'static str {
        match self {
            Category::Energy => "ENERGY",
            Category::Noise => "NOISE",
            Category::Garbage => "GARBAGE",
            Category::Parking => "PARKING",
            Category::Urban => "URBANLAB",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Energy => "Energy monitoring",
            Category::Noise => "Noise monitoring",
            Category::Garbage => "Garbage collection",
            Category::Parking => "Parking spot",
            Category::Urban => "Urban Lab monitoring",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_rates_match_the_paper() {
        assert_eq!(Category::Energy.redundancy_percent(), 50);
        assert_eq!(Category::Noise.redundancy_percent(), 75);
        assert_eq!(Category::Garbage.redundancy_percent(), 70);
        assert_eq!(Category::Parking.redundancy_percent(), 40);
        assert_eq!(Category::Urban.redundancy_percent(), 30);
    }

    #[test]
    fn reduce_bytes_is_exact_on_table_entries() {
        // Table I: energy 1,555,774 -> 777,887 per transaction wave.
        assert_eq!(Category::Energy.reduce_bytes(1_555_774), 777_887);
        // Noise 220,000 -> 55,000.
        assert_eq!(Category::Noise.reduce_bytes(220_000), 55_000);
        // Garbage 2,000,000 -> 600,000.
        assert_eq!(Category::Garbage.reduce_bytes(2_000_000), 600_000);
        // Parking 3,200,000 -> 1,920,000.
        assert_eq!(Category::Parking.reduce_bytes(3_200_000), 1_920_000);
        // Urban air quality 5,760,000 -> 4,032,000.
        assert_eq!(Category::Urban.reduce_bytes(5_760_000), 4_032_000);
    }

    #[test]
    fn keep_fraction_complements_redundancy() {
        for c in Category::ALL {
            let sum = c.keep_fraction() + f64::from(c.redundancy_percent()) / 100.0;
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_has_distinct_display_and_providers() {
        let mut names: Vec<String> = Category::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
        let mut providers: Vec<&str> = Category::ALL.iter().map(|c| c.provider()).collect();
        providers.sort();
        providers.dedup();
        assert_eq!(providers.len(), 5);
    }
}
