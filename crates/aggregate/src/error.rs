use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from aggregation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A window length of zero was requested.
    EmptyWindow,
    /// A sketch was configured with zero width/depth/registers.
    DegenerateSketch {
        /// Which parameter was zero.
        parameter: &'static str,
    },
    /// A shipped aggregate partial failed its integrity checks.
    CorruptPartial {
        /// Which check refused it (magic, layout, or CRC).
        reason: &'static str,
    },
    /// A protocol was run over an empty node set.
    NoParticipants,
    /// A gossip/flood round count of zero was requested.
    ZeroRounds,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyWindow => write!(f, "window length must be positive"),
            Error::DegenerateSketch { parameter } => {
                write!(f, "sketch parameter {parameter} must be positive")
            }
            Error::CorruptPartial { reason } => {
                write!(f, "shipped partial failed integrity check: {reason}")
            }
            Error::NoParticipants => write!(f, "protocol needs at least one participant"),
            Error::ZeroRounds => write!(f, "round count must be positive"),
        }
    }
}

impl std::error::Error for Error {}
