//! Data-aggregation library for the F2C reproduction.
//!
//! §V.A of the paper surveys aggregation along two taxonomies
//! (communication: structured/unstructured/hybrid; computation:
//! decomposable/complex/counting) and then evaluates two concrete
//! techniques at fog layer 1: **redundant-data elimination** and
//! compression. This crate implements the evaluated techniques plus a
//! representative slice of the surveyed taxonomy, so the architecture's
//! "many other aggregation techniques could easily be applied" claim is
//! backed by working code:
//!
//! * [`dedup`] — redundant-data elimination (the paper's technique #1),
//! * [`window`] — tumbling-window combination (count/min/max/mean),
//! * [`functions`] — decomposable aggregate functions with mergeable
//!   partial states (the "hierarchic/averaging" computation class),
//! * [`sketch`] — count-min and HyperLogLog (the "sketches" and
//!   "randomized counting" classes), plus the sketch plane's mergeable
//!   [`sketch::AggPartial`] (CRC-checked wire form) and per-node
//!   [`sketch::SketchLedger`] of bucketed, compaction-surviving
//!   partials,
//! * [`protocol`] — tree (structured/hierarchical), gossip push-sum
//!   (unstructured), and flooding (unstructured) protocols,
//! * [`plan`] — composable per-fog-node aggregation pipelines.
//!
//! # Quickstart
//!
//! ```
//! use f2c_aggregate::dedup::RedundancyFilter;
//! use scc_sensors::{ReadingGenerator, SensorType};
//!
//! let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 50, 42);
//! let mut filter = RedundancyFilter::new();
//! let mut kept = 0usize;
//! let mut total = 0usize;
//! for wave in 0..100 {
//!     for r in gen.wave(wave * 900) {
//!         total += 1;
//!         if filter.admit(&r) {
//!             kept += 1;
//!         }
//!     }
//! }
//! // Energy sensors repeat ~50% of readings (Table I).
//! assert!((kept as f64 / total as f64 - 0.5).abs() < 0.05);
//! ```

pub mod dedup;
pub mod delta;
mod error;
pub mod functions;
pub mod plan;
pub mod protocol;
pub mod sketch;
pub mod window;

pub use dedup::{DedupStats, RedundancyFilter};
pub use error::{Error, Result};
pub use plan::{AggregationPlan, PlanReport, Stage};
pub use window::{WindowCombiner, WindowSummary};
