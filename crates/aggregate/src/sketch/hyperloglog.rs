//! HyperLogLog: approximate distinct counting in fixed memory — the
//! "randomized counting" class of the paper's taxonomy.

use super::hash64;
use crate::{Error, Result};

/// A HyperLogLog cardinality estimator with `2^precision` registers.
///
/// Standard error is ≈ `1.04 / sqrt(2^precision)` (≈3.2 % at precision 10).
/// Includes the small-range linear-counting correction.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::sketch::HyperLogLog;
///
/// let mut hll = HyperLogLog::new(12)?;
/// for i in 0..10_000u32 {
///     hll.add(&i.to_le_bytes());
/// }
/// let est = hll.estimate();
/// assert!((est as f64 - 10_000.0).abs() / 10_000.0 < 0.05);
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u32,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an estimator with `2^precision` registers, `4 <= precision <= 16`.
    ///
    /// # Errors
    ///
    /// [`Error::DegenerateSketch`] if `precision` is outside `4..=16`.
    pub fn new(precision: u32) -> Result<Self> {
        if !(4..=16).contains(&precision) {
            return Err(Error::DegenerateSketch {
                parameter: "precision",
            });
        }
        Ok(Self {
            precision,
            registers: vec![0; 1 << precision],
        })
    }

    /// Rebuilds an estimator from raw register values (the wire form of
    /// a shipped partial). `registers` must be exactly `2^precision`
    /// long.
    ///
    /// # Errors
    ///
    /// [`Error::DegenerateSketch`] if `precision` is outside `4..=16` or
    /// the register block has the wrong length.
    pub fn from_registers(precision: u32, registers: Vec<u8>) -> Result<Self> {
        if !(4..=16).contains(&precision) || registers.len() != 1 << precision {
            return Err(Error::DegenerateSketch {
                parameter: "registers",
            });
        }
        Ok(Self {
            precision,
            registers,
        })
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The sketch's precision.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// The raw register values (for wire encoding; merging two sketches
    /// is a register-wise max over these).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Adds one element.
    pub fn add(&mut self, key: &[u8]) {
        let h = hash64(key, HLL_SEED);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank: position of the first 1-bit in the remaining bits, 1-based.
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct elements added.
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting.
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        let corrected = if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        corrected.round() as u64
    }

    /// Merges another estimator with the same precision (register-wise max).
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HLLs of different precisions"
        );
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }
}

/// Hash seed for HLL (ASCII "HLL" — distinct from the count-min row seeds).
const HLL_SEED: u64 = 0x48_4C_4C;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bounds_enforced() {
        assert!(HyperLogLog::new(3).is_err());
        assert!(HyperLogLog::new(17).is_err());
        assert!(HyperLogLog::new(4).is_ok());
        assert!(HyperLogLog::new(16).is_ok());
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut hll = HyperLogLog::new(10).unwrap();
        for i in 0..100u32 {
            hll.add(&i.to_le_bytes());
        }
        let est = hll.estimate();
        assert!((90..=110).contains(&est), "estimated {est} for 100");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(10).unwrap();
        for _ in 0..50 {
            for i in 0..200u32 {
                hll.add(&i.to_le_bytes());
            }
        }
        let est = hll.estimate();
        assert!(
            (170..=230).contains(&est),
            "estimated {est} for 200 distinct"
        );
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        let mut hll = HyperLogLog::new(12).unwrap();
        let n = 100_000u32;
        for i in 0..n {
            hll.add(&i.to_le_bytes());
        }
        let est = hll.estimate() as f64;
        let rel = (est - f64::from(n)).abs() / f64::from(n);
        assert!(rel < 0.05, "relative error {rel:.3}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(11).unwrap();
        let mut b = HyperLogLog::new(11).unwrap();
        let mut whole = HyperLogLog::new(11).unwrap();
        for i in 0..20_000u32 {
            let key = i.to_le_bytes();
            if i % 2 == 0 {
                a.add(&key);
            } else {
                b.add(&key);
            }
            whole.add(&key);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(8).unwrap();
        assert_eq!(hll.estimate(), 0);
    }

    #[test]
    #[should_panic(expected = "different precisions")]
    fn precision_mismatch_merge_panics() {
        let mut a = HyperLogLog::new(8).unwrap();
        let b = HyperLogLog::new(9).unwrap();
        a.merge(&b);
    }
}
