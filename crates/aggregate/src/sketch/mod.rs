//! Sublinear-memory sketches — the "sketches" and "randomized counting"
//! classes of the paper's computation taxonomy (§V.A, \[20\]) — and the
//! **sketch plane** built on them.
//!
//! Fog nodes have bounded memory; sketches let them answer frequency and
//! cardinality questions about city-scale streams (how many distinct
//! vehicles passed, how often each parking zone toggles) in constant space
//! and merge those answers up the F2C hierarchy.
//!
//! The sketch plane is that merge made systemic: [`AggPartial`] bundles
//! the mergeable states one aggregate answer needs (moments, extremes,
//! a HyperLogLog distinct sketch) behind a CRC-checked wire encoding,
//! and [`SketchLedger`] keeps a node's bucketed partials — epoch-keyed,
//! seal-fronted, surviving raw-record compaction — so flush shipments
//! arrive pre-folded and evicted windows stay answerable.
//!
//! # Example: fold at fog 1, ship, merge at fog 2
//!
//! ```
//! use f2c_aggregate::sketch::{AggPartial, SketchKey, SketchLedger};
//! use scc_sensors::SensorType;
//!
//! // Fog 1 folds its flush batch into one bucket partial...
//! let mut partial = AggPartial::empty();
//! for i in 0..50u64 {
//!     partial.absorb(20.0 + (i % 5) as f64, i % 12);
//! }
//! let key = SketchKey { section: 3, ty: SensorType::Temperature, bucket_start_s: 0 };
//! let shipped = partial.encode(); // CRC-protected wire form
//!
//! // ...and fog 2 folds the shipment instead of re-scanning records.
//! let mut fog2 = SketchLedger::new(900)?;
//! fog2.fold_encoded(key, &shipped, 1)?;
//! fog2.seal(3, 900);
//! let mut answer = AggPartial::empty();
//! assert!(fog2.covers(3, 0, 900));
//! fog2.merge_range(3, SensorType::Temperature, 0, 900, &mut answer);
//! assert_eq!(answer.count(), 50);
//! assert_eq!(answer.distinct_estimate(), 12);
//! # Ok::<(), f2c_aggregate::Error>(())
//! ```

mod countmin;
mod hyperloglog;
mod ledger;
mod partial;
mod qdigest;

pub use countmin::CountMinSketch;
pub use hyperloglog::HyperLogLog;
pub use ledger::{SketchKey, SketchLedger};
pub use partial::{AggPartial, PARTIAL_HLL_PRECISION};
pub use qdigest::QDigest;

/// 64-bit FNV-1a hash used by the sketches (dependency-free, well mixed
/// after the final avalanche step).
pub(crate) fn hash64(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix-style) to decorrelate low bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_differs_by_seed_and_input() {
        let a = hash64(b"sensor-1", 0);
        let b = hash64(b"sensor-1", 1);
        let c = hash64(b"sensor-2", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_distributes_low_bits() {
        // Bucket 10k keys into 64 buckets; no bucket should be wildly off.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u32 {
            let h = hash64(&i.to_le_bytes(), 7);
            buckets[(h % 64) as usize] += 1;
        }
        let expected = 10_000 / 64;
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).abs() < 80,
                "bucket {i} has {c}, expected ~{expected}"
            );
        }
    }
}
