//! Sublinear-memory sketches — the "sketches" and "randomized counting"
//! classes of the paper's computation taxonomy (§V.A, \[20\]).
//!
//! Fog nodes have bounded memory; sketches let them answer frequency and
//! cardinality questions about city-scale streams (how many distinct
//! vehicles passed, how often each parking zone toggles) in constant space
//! and merge those answers up the F2C hierarchy.

mod countmin;
mod hyperloglog;
mod qdigest;

pub use countmin::CountMinSketch;
pub use hyperloglog::HyperLogLog;
pub use qdigest::QDigest;

/// 64-bit FNV-1a hash used by the sketches (dependency-free, well mixed
/// after the final avalanche step).
pub(crate) fn hash64(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix-style) to decorrelate low bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_differs_by_seed_and_input() {
        let a = hash64(b"sensor-1", 0);
        let b = hash64(b"sensor-1", 1);
        let c = hash64(b"sensor-2", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_distributes_low_bits() {
        // Bucket 10k keys into 64 buckets; no bucket should be wildly off.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u32 {
            let h = hash64(&i.to_le_bytes(), 7);
            buckets[(h % 64) as usize] += 1;
        }
        let expected = 10_000 / 64;
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).abs() < 80,
                "bucket {i} has {c}, expected ~{expected}"
            );
        }
    }
}
