//! The mergeable aggregate partial and its CRC-checked wire encoding —
//! the unit the sketch plane ships up the F2C hierarchy.
//!
//! An [`AggPartial`] bundles the three §V.A-mergeable states one
//! aggregate answer needs: [`Moments`] (count/sum/sum-of-squares),
//! [`MinMax`] extremes, and a [`HyperLogLog`] distinct-sensor sketch.
//! Folding records into partials and merging partials commutes with a
//! flat fold (exactly for count/min/max/distinct, within float rounding
//! for sums), which is what lets fog-1 nodes pre-fold their flush
//! batches and every tier above merge instead of re-scanning.
//!
//! The wire form ([`AggPartial::encode`] / [`AggPartial::decode`]) is a
//! fixed little-endian layout with a sparse-or-dense register encoding
//! for the HyperLogLog and a trailing CRC-32 over everything before it,
//! so a corrupted shipment is detected at the receiving tier instead of
//! silently skewing a city-wide aggregate.

use crate::functions::{Decomposable, MinMax, Moments};
use crate::sketch::HyperLogLog;
use crate::{Error, Result};

/// HyperLogLog precision used by every [`AggPartial`] (1024 registers,
/// ~3% standard error — plenty for per-district sensor populations).
/// One fixed precision keeps every partial in the system mergeable.
pub const PARTIAL_HLL_PRECISION: u32 = 10;

/// Wire magic of an encoded partial (`b"AGP1"`).
const MAGIC: [u8; 4] = *b"AGP1";

/// A mergeable partial aggregation state over a slice of observations —
/// moments + extremes + a distinct-sensor sketch, all of which merge
/// exactly (the §V.A decomposable/counting computation classes).
///
/// # Examples
///
/// A fold split across two nodes merges to the flat fold, and the wire
/// roundtrip is lossless:
///
/// ```
/// use f2c_aggregate::sketch::AggPartial;
///
/// let mut flat = AggPartial::empty();
/// let (mut a, mut b) = (AggPartial::empty(), AggPartial::empty());
/// for i in 0..100u64 {
///     flat.absorb(i as f64, i % 7);
///     if i % 2 == 0 { a.absorb(i as f64, i % 7) } else { b.absorb(i as f64, i % 7) }
/// }
/// let shipped = AggPartial::decode(&a.encode())?; // CRC-checked hop
/// let mut merged = shipped;
/// merged.merge(&b);
/// assert_eq!(merged.count(), flat.count());
/// assert_eq!(merged.distinct_estimate(), flat.distinct_estimate());
/// assert_eq!(merged.minmax().min, flat.minmax().min);
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AggPartial {
    moments: Moments,
    minmax: MinMax,
    distinct: HyperLogLog,
}

impl AggPartial {
    /// The identity partial.
    pub fn empty() -> Self {
        Self {
            moments: Moments::empty(),
            minmax: MinMax::empty(),
            distinct: HyperLogLog::new(PARTIAL_HLL_PRECISION).expect("precision 10 is valid"),
        }
    }

    /// Absorbs one observation: its magnitude into the moments and
    /// extremes, its producing sensor's identity into the distinct
    /// sketch.
    pub fn absorb(&mut self, magnitude: f64, sensor_key: u64) {
        self.moments.absorb(magnitude);
        self.minmax.absorb(magnitude);
        self.distinct.add(&sensor_key.to_le_bytes());
    }

    /// Merges another partial into this one. Order-insensitive for
    /// count/min/max/distinct; floating sums may differ from a flat fold
    /// by rounding only.
    pub fn merge(&mut self, other: &Self) {
        self.moments.merge(&other.moments);
        self.minmax.merge(&other.minmax);
        self.distinct.merge(&other.distinct);
    }

    /// Number of absorbed observations.
    pub fn count(&self) -> u64 {
        self.moments.count
    }

    /// The moments state (count, sum, sum of squares).
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The extremes state.
    pub fn minmax(&self) -> &MinMax {
        &self.minmax
    }

    /// HyperLogLog estimate of distinct absorbed sensor keys (0 when
    /// nothing was absorbed).
    pub fn distinct_estimate(&self) -> u64 {
        if self.moments.count == 0 {
            0
        } else {
            self.distinct.estimate()
        }
    }

    /// Encodes the partial for shipping: magic, moments, extremes, the
    /// HyperLogLog registers (sparse when mostly empty, dense
    /// otherwise), and a trailing CRC-32 over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let registers = self.distinct.registers();
        let occupied: Vec<(u16, u8)> = registers
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r != 0)
            .map(|(i, &r)| (i as u16, r))
            .collect();
        let mut out = Vec::with_capacity(64 + occupied.len() * 3);
        out.extend_from_slice(&MAGIC);
        out.push(PARTIAL_HLL_PRECISION as u8);
        out.push(u8::from(self.minmax.min.is_some()));
        out.extend_from_slice(&self.moments.count.to_le_bytes());
        out.extend_from_slice(&self.moments.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&self.moments.sum_sq.to_bits().to_le_bytes());
        out.extend_from_slice(&self.minmax.min.unwrap_or(0.0).to_bits().to_le_bytes());
        out.extend_from_slice(&self.minmax.max.unwrap_or(0.0).to_bits().to_le_bytes());
        // Sparse beats dense while fewer than a third of the registers
        // are occupied (3 bytes per entry vs 1 byte per register).
        if occupied.len() * 3 < registers.len() {
            out.push(1);
            out.extend_from_slice(&(occupied.len() as u16).to_le_bytes());
            for (idx, rank) in occupied {
                out.extend_from_slice(&idx.to_le_bytes());
                out.push(rank);
            }
        } else {
            out.push(0);
            out.extend_from_slice(registers);
        }
        let crc = f2c_compress::crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a shipped partial, verifying the layout and the CRC.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptPartial`] on a short buffer, bad magic, precision
    /// mismatch, malformed register block, or checksum failure.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let corrupt = |reason: &'static str| Error::CorruptPartial { reason };
        if bytes.len() < 4 + 2 + 5 * 8 + 1 + 4 {
            return Err(corrupt("short buffer"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if f2c_compress::crc32::checksum(body) != want {
            return Err(corrupt("checksum mismatch"));
        }
        if body[0..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if u32::from(body[4]) != PARTIAL_HLL_PRECISION {
            return Err(corrupt("precision mismatch"));
        }
        let has_minmax = match body[5] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("bad extremes flag")),
        };
        let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8"));
        let count = u64_at(6);
        let sum = f64::from_bits(u64_at(14));
        let sum_sq = f64::from_bits(u64_at(22));
        let min = f64::from_bits(u64_at(30));
        let max = f64::from_bits(u64_at(38));
        let mut registers = vec![0u8; 1 << PARTIAL_HLL_PRECISION];
        let regs = &body[47..];
        match body[46] {
            0 => {
                if regs.len() != registers.len() {
                    return Err(corrupt("dense register block length"));
                }
                registers.copy_from_slice(regs);
            }
            1 => {
                if regs.len() < 2 {
                    return Err(corrupt("sparse register header"));
                }
                let n = usize::from(u16::from_le_bytes([regs[0], regs[1]]));
                if regs.len() != 2 + n * 3 {
                    return Err(corrupt("sparse register block length"));
                }
                for entry in regs[2..].chunks_exact(3) {
                    let idx = usize::from(u16::from_le_bytes([entry[0], entry[1]]));
                    if idx >= registers.len() {
                        return Err(corrupt("sparse register index out of range"));
                    }
                    registers[idx] = entry[2];
                }
            }
            _ => return Err(corrupt("bad register mode")),
        }
        Ok(Self {
            moments: Moments { sum, sum_sq, count },
            minmax: if has_minmax {
                MinMax {
                    min: Some(min),
                    max: Some(max),
                }
            } else {
                MinMax::empty()
            },
            distinct: HyperLogLog::from_registers(PARTIAL_HLL_PRECISION, registers)?,
        })
    }
}

impl Default for AggPartial {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, distinct: u64) -> AggPartial {
        let mut p = AggPartial::empty();
        for i in 0..n {
            p.absorb((i % 13) as f64 - 3.0, i % distinct.max(1));
        }
        p
    }

    #[test]
    fn roundtrip_is_lossless() {
        for p in [AggPartial::empty(), filled(1, 1), filled(500, 40)] {
            let wire = p.encode();
            assert_eq!(AggPartial::decode(&wire).unwrap(), p);
        }
    }

    #[test]
    fn sparse_encoding_shrinks_small_partials() {
        let empty = AggPartial::empty().encode();
        let small = filled(8, 8).encode();
        let big = filled(100_000, 100_000).encode();
        assert!(empty.len() < 64, "empty partial is {}B", empty.len());
        assert!(small.len() < 128, "small partial is {}B", small.len());
        // A saturated sketch falls back to the dense register block.
        assert!(big.len() > 1_024 && big.len() < 1_200);
    }

    #[test]
    fn corruption_is_detected() {
        let mut wire = filled(64, 9).encode();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        assert!(matches!(
            AggPartial::decode(&wire),
            Err(Error::CorruptPartial { .. })
        ));
        assert!(matches!(
            AggPartial::decode(&wire[..10]),
            Err(Error::CorruptPartial { .. })
        ));
        assert!(matches!(
            AggPartial::decode(&[]),
            Err(Error::CorruptPartial { .. })
        ));
    }

    #[test]
    fn truncation_and_magic_are_detected() {
        let wire = filled(64, 9).encode();
        // Recompute a valid CRC over a truncated body: the layout checks
        // must still refuse it.
        let mut cut = wire[..wire.len() - 10].to_vec();
        let crc = f2c_compress::crc32::checksum(&cut);
        cut.extend_from_slice(&crc.to_le_bytes());
        assert!(AggPartial::decode(&cut).is_err());

        let mut relabeled = wire.clone();
        relabeled[0] = b'X';
        let body_len = relabeled.len() - 4;
        let crc = f2c_compress::crc32::checksum(&relabeled[..body_len]);
        relabeled[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            AggPartial::decode(&relabeled),
            Err(Error::CorruptPartial {
                reason: "bad magic"
            })
        ));
    }

    #[test]
    fn merge_of_decoded_equals_merge_of_originals() {
        let a = filled(300, 25);
        let b = filled(77, 11);
        let mut direct = a.clone();
        direct.merge(&b);
        let mut wired = AggPartial::decode(&a.encode()).unwrap();
        wired.merge(&AggPartial::decode(&b.encode()).unwrap());
        assert_eq!(direct, wired);
    }

    #[test]
    fn empty_partial_finalizes_to_zeroes() {
        let p = AggPartial::empty();
        assert_eq!(p.count(), 0);
        assert_eq!(p.distinct_estimate(), 0);
        assert_eq!(p.minmax().min, None);
        assert_eq!(p.moments().mean(), None);
    }
}
