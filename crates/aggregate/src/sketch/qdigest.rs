//! Q-digest: a mergeable quantile summary over a bounded integer domain —
//! the "digests basis" of the survey's *complex functions* class (§V.A,
//! \[20\]). Fog nodes can answer "what is the p95 noise level in my
//! section?" in bounded memory, and district nodes can merge their
//! children's digests without touching raw data.

use std::collections::HashMap;

use crate::{Error, Result};

/// A q-digest over the domain `0..=domain-1` (power of two) with
/// compression factor `k`: at most `3k` nodes are retained, and quantile
/// queries err by at most `log2(domain)/k` of the total count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QDigest {
    /// Domain size (power of two).
    domain: u64,
    /// Compression factor.
    k: u64,
    /// Counts per binary-tree node id (1 = root; leaves are
    /// `domain..2*domain`).
    nodes: HashMap<u64, u64>,
    total: u64,
}

impl QDigest {
    /// Creates a digest over `0..domain` with compression factor `k`.
    ///
    /// # Errors
    ///
    /// [`Error::DegenerateSketch`] unless `domain` is a power of two ≥ 2
    /// and `k ≥ 1`.
    pub fn new(domain: u64, k: u64) -> Result<Self> {
        if domain < 2 || !domain.is_power_of_two() {
            return Err(Error::DegenerateSketch {
                parameter: "domain",
            });
        }
        if k == 0 {
            return Err(Error::DegenerateSketch { parameter: "k" });
        }
        Ok(Self {
            domain,
            k,
            nodes: HashMap::new(),
            total: 0,
        })
    }

    /// Number of values absorbed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of retained tree nodes (bounded by ~3k after compression).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds one value.
    ///
    /// # Panics
    ///
    /// Panics if `value >= domain` — feeding out-of-domain data is a
    /// caller bug, not a data condition.
    pub fn add(&mut self, value: u64) {
        self.add_n(value, 1);
    }

    /// Adds `n` occurrences of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        assert!(
            value < self.domain,
            "value {value} outside domain {}",
            self.domain
        );
        let leaf = self.domain + value;
        *self.nodes.entry(leaf).or_insert(0) += n;
        self.total += n;
        if self.nodes.len() as u64 > 3 * self.k {
            self.compress();
        }
    }

    /// Merges another digest with identical parameters.
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatch.
    pub fn merge(&mut self, other: &QDigest) {
        assert_eq!(
            (self.domain, self.k),
            (other.domain, other.k),
            "cannot merge q-digests with different parameters"
        );
        for (&node, &count) in &other.nodes {
            *self.nodes.entry(node).or_insert(0) += count;
        }
        self.total += other.total;
        self.compress();
    }

    /// The classic q-digest compression: siblings + parent triples whose
    /// combined count is below `total/k` are folded into the parent.
    fn compress(&mut self) {
        if self.total == 0 {
            return;
        }
        let threshold = self.total / self.k;
        // Bottom-up sweep: process deeper node ids first.
        let mut ids: Vec<u64> = self.nodes.keys().copied().collect();
        ids.sort_unstable_by(|a, b| b.cmp(a));
        for id in ids {
            if id <= 1 {
                continue; // never fold the root away
            }
            let Some(&count) = self.nodes.get(&id) else {
                continue;
            };
            let sibling = id ^ 1;
            let parent = id / 2;
            let sib_count = self.nodes.get(&sibling).copied().unwrap_or(0);
            let parent_count = self.nodes.get(&parent).copied().unwrap_or(0);
            if count + sib_count + parent_count <= threshold {
                self.nodes.remove(&id);
                self.nodes.remove(&sibling);
                *self.nodes.entry(parent).or_insert(0) += count + sib_count;
            }
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]`, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        // Post-order over retained nodes sorted by their interval's upper
        // bound (then smaller ranges first), accumulating counts.
        let mut entries: Vec<(u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|(&id, &count)| {
                let (lo, hi) = self.range_of(id);
                (hi, lo, count)
            })
            .collect();
        entries.sort_unstable();
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (hi, _lo, count) in entries {
            seen += count;
            if seen >= target {
                return Some(hi);
            }
        }
        Some(self.domain - 1)
    }

    /// The value interval `[lo, hi]` a tree node covers: node ids at depth
    /// `d` occupy `[2^d, 2^{d+1})` and each covers `domain / 2^d`
    /// consecutive values.
    fn range_of(&self, id: u64) -> (u64, u64) {
        let level_start = 1u64 << (63 - id.leading_zeros());
        let width = self.domain / level_start;
        let idx = id - level_start;
        (idx * width, idx * width + width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(QDigest::new(0, 4).is_err());
        assert!(QDigest::new(3, 4).is_err());
        assert!(QDigest::new(64, 0).is_err());
        assert!(QDigest::new(64, 4).is_ok());
    }

    #[test]
    fn exact_on_tiny_inputs() {
        let mut d = QDigest::new(256, 64).unwrap();
        for v in [10u64, 20, 30, 40, 50] {
            d.add(v);
        }
        assert_eq!(d.count(), 5);
        let median = d.quantile(0.5).unwrap();
        assert!((20..=40).contains(&median), "median {median}");
        assert!(d.quantile(0.0).unwrap() <= 20);
        assert!(d.quantile(1.0).unwrap() >= 40);
    }

    #[test]
    fn quantiles_on_uniform_data_are_close() {
        let mut d = QDigest::new(1024, 32).unwrap();
        for v in 0..1024u64 {
            d.add(v);
        }
        for (q, expect) in [(0.25, 256.0), (0.5, 512.0), (0.9, 922.0)] {
            let got = d.quantile(q).unwrap() as f64;
            let err = (got - expect).abs() / 1024.0;
            assert!(err < 0.12, "q{q}: got {got}, expected ~{expect}");
        }
    }

    #[test]
    fn memory_is_bounded_by_compression_factor() {
        let mut d = QDigest::new(1 << 16, 16).unwrap();
        // Stream far more distinct values than 3k.
        for i in 0..50_000u64 {
            d.add((i * 2654435761) % (1 << 16));
        }
        assert!(
            d.node_count() <= 3 * 16 + 2,
            "retained {} nodes for k=16",
            d.node_count()
        );
        assert_eq!(d.count(), 50_000);
    }

    #[test]
    fn merge_approximates_union() {
        let mut a = QDigest::new(512, 32).unwrap();
        let mut b = QDigest::new(512, 32).unwrap();
        let mut whole = QDigest::new(512, 32).unwrap();
        for i in 0..2_000u64 {
            let v = (i * 37) % 512;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9] {
            let ma = a.quantile(q).unwrap() as f64;
            let mw = whole.quantile(q).unwrap() as f64;
            assert!(
                (ma - mw).abs() / 512.0 < 0.15,
                "q{q}: merged {ma} vs whole {mw}"
            );
        }
    }

    #[test]
    fn skewed_distribution_p99() {
        // 99% small values, 1% near the top: p99 must see the tail region.
        let mut d = QDigest::new(1024, 64).unwrap();
        for _ in 0..990 {
            d.add(10);
        }
        for _ in 0..10 {
            d.add(1000);
        }
        assert!(d.quantile(0.5).unwrap() < 64);
        assert!(d.quantile(0.995).unwrap() >= 512);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        QDigest::new(64, 4).unwrap().add(64);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn mismatched_merge_panics() {
        let mut a = QDigest::new(64, 4).unwrap();
        let b = QDigest::new(128, 4).unwrap();
        a.merge(&b);
    }

    #[test]
    fn empty_digest_has_no_quantiles() {
        let d = QDigest::new(64, 4).unwrap();
        assert_eq!(d.quantile(0.5), None);
    }
}
