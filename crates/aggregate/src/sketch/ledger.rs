//! The per-node sketch ledger: epoch-keyed, CRC-checked bucket partials
//! that survive raw-record compaction.
//!
//! Every F2C node keeps one [`SketchLedger`]. A fog-1 node folds each
//! flush batch into per-`(section, type, bucket)` [`AggPartial`]s and
//! ships the encoded partials upward alongside the raw records; fog-2
//! and the cloud fold the incoming shipments into their own ledgers (a
//! CRC failure is counted, never silently merged) instead of ever
//! re-scanning raw records for aggregate state.
//!
//! Two watermarks make ledger answers *provable*:
//!
//! * a per-section **seal frontier** ([`SketchLedger::sealed_through`]):
//!   every record of that section created before the frontier that the
//!   owning node has shipped/received is folded in — so an *absent*
//!   bucket below the frontier is provably empty, not merely unsealed;
//! * an **eviction watermark** ([`SketchLedger::evicted_before_s`]):
//!   ledger compaction ([`SketchLedger::evict_older_than`]) never
//!   removes buckets at or after it, mirroring the tiered store's raw
//!   watermark — but with a much longer horizon, because bucket
//!   partials are constant-size where raw records are not.
//!
//! Entries also remember the owner-local flush epoch that last touched
//! them — observability only (which flush a bucket last absorbed).
//! Staleness *proofs* never read it: a warm-sketch answer is offered
//! exactly when the window end lies at or before the seal frontier
//! *and* the owner has nothing pending below it (the planner's check).

use std::collections::{HashMap, HashSet};

use scc_sensors::SensorType;

use super::AggPartial;
use crate::{Error, Result};

/// Identity of one folded bucket partial: which section produced the
/// records, which sensor type they are, and the bucket's start instant
/// (a multiple of the ledger's bucket width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SketchKey {
    /// Producing section (fog-1 catchment), from the record descriptors.
    pub section: u16,
    /// Sensor type of the folded records.
    pub ty: SensorType,
    /// Bucket start in seconds (multiple of the bucket width).
    pub bucket_start_s: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    partial: AggPartial,
    /// Owner-local flush epoch that last folded into this bucket.
    epoch: u64,
}

/// Epoch-keyed store of bucket partials with seal and eviction
/// watermarks.
///
/// Two watermarks make ledger answers *provable*: a per-section **seal
/// frontier** ([`SketchLedger::sealed_through`] — every record of the
/// section created before it that the owner has shipped/received is
/// folded in, so an absent sealed bucket is provably empty) and an
/// **eviction watermark** ([`SketchLedger::evicted_before_s`] —
/// compaction never removes buckets at or after it). Entries remember
/// the owner-local flush epoch that last touched them.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::sketch::{AggPartial, SketchKey, SketchLedger};
/// use scc_sensors::SensorType;
///
/// let mut ledger = SketchLedger::new(900)?;
/// let key = SketchKey { section: 21, ty: SensorType::Traffic, bucket_start_s: 0 };
/// let mut partial = AggPartial::empty();
/// partial.absorb(4.2, 7);
/// ledger.fold(key, &partial, 1);
/// ledger.seal(21, 900);
/// assert!(ledger.covers(21, 0, 900));
/// let mut acc = AggPartial::empty();
/// ledger.merge_range(21, SensorType::Traffic, 0, 900, &mut acc);
/// assert_eq!(acc.count(), 1);
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SketchLedger {
    bucket_s: u64,
    entries: HashMap<SketchKey, Entry>,
    sealed: HashMap<u16, u64>,
    /// Buckets whose shipped partial was refused (corrupt) — the folded
    /// increments are lost, so these buckets can never again be proved
    /// complete here, no matter what the seal frontier says. Holes
    /// propagate upward with the relay and only leave via compaction.
    holes: HashSet<SketchKey>,
    evicted_before_s: u64,
    folds: u64,
    crc_failures: u64,
}

impl SketchLedger {
    /// An empty ledger bucketing at `bucket_s`-second boundaries.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyWindow`] on a zero bucket width.
    pub fn new(bucket_s: u64) -> Result<Self> {
        if bucket_s == 0 {
            return Err(Error::EmptyWindow);
        }
        Ok(Self {
            bucket_s,
            entries: HashMap::new(),
            sealed: HashMap::new(),
            holes: HashSet::new(),
            evicted_before_s: 0,
            folds: 0,
            crc_failures: 0,
        })
    }

    /// The bucket width in seconds.
    pub fn bucket_s(&self) -> u64 {
        self.bucket_s
    }

    /// Start of the bucket containing `t_s`.
    pub fn bucket_start(&self, t_s: u64) -> u64 {
        t_s - t_s % self.bucket_s
    }

    /// Number of resident bucket partials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger holds no partials.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total partials folded in (local folds + decoded shipments).
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Shipped partials refused for failing their CRC or layout checks.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Merges `partial` into the bucket at `key`, stamping it with the
    /// owner's flush `epoch`.
    pub fn fold(&mut self, key: SketchKey, partial: &AggPartial, epoch: u64) {
        debug_assert_eq!(key.bucket_start_s % self.bucket_s, 0, "unaligned key");
        self.folds += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.partial.merge(partial);
                entry.epoch = entry.epoch.max(epoch);
            }
            None => {
                self.entries.insert(
                    key,
                    Entry {
                        partial: partial.clone(),
                        epoch,
                    },
                );
            }
        }
    }

    /// Decodes one shipped partial (verifying its CRC) and folds it in.
    /// Returns the decoded partial so receivers can relay it upward
    /// without a second decode.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptPartial`] — the shipment is refused: nothing is
    /// merged, the failure is counted in
    /// [`SketchLedger::crc_failures`], and a coverage hole is punched
    /// at `key` so the bucket can never be falsely proved complete.
    pub fn fold_encoded(&mut self, key: SketchKey, bytes: &[u8], epoch: u64) -> Result<AggPartial> {
        match AggPartial::decode(bytes) {
            Ok(partial) => {
                self.fold(key, &partial, epoch);
                Ok(partial)
            }
            Err(e) => {
                self.crc_failures += 1;
                // The folded increments are lost for good: the bucket is
                // a permanent coverage hole, whatever the seal says.
                self.mark_hole(key);
                Err(e)
            }
        }
    }

    /// Punches a coverage hole at `key`: the bucket cannot be proved
    /// complete here ([`SketchLedger::covers`] refuses windows
    /// containing it), because a shipment for it was lost. Receivers
    /// call this for holes relayed from below, so a hole propagates to
    /// every tier whose ledger misses the data. Idempotent — repeated
    /// corrupt relays of the same bucket punch the same single hole —
    /// and a no-op behind the compaction watermark, where `covers`
    /// already refuses everything (so a stale relay cannot regrow the
    /// set past compaction). A hole leaves via compaction or via a
    /// successful [`SketchLedger::heal_encoded`].
    pub fn mark_hole(&mut self, key: SketchKey) {
        if key.bucket_start_s + self.bucket_s > self.evicted_before_s {
            self.holes.insert(key);
        }
    }

    /// The current coverage holes (arbitrary order).
    pub fn holes(&self) -> impl Iterator<Item = &SketchKey> {
        self.holes.iter()
    }

    /// The current coverage holes in key order — the deterministic
    /// iteration anti-entropy walks.
    pub fn holes_sorted(&self) -> Vec<SketchKey> {
        let mut out: Vec<SketchKey> = self.holes.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Whether `key` is currently a coverage hole.
    pub fn is_hole(&self, key: &SketchKey) -> bool {
        self.holes.contains(key)
    }

    /// Anti-entropy heal: installs an **authoritative** re-shipped
    /// partial at `key` — replacing whatever fragment survived, because
    /// the shipper's ledger holds the bucket's full fold and a merge
    /// would double-count the part that did arrive — and removes the
    /// hole, restoring [`SketchLedger::covers`] for the bucket. Returns
    /// `true` when the bucket was a hole and is now healed. Behind the
    /// compaction watermark the heal is refused (coverage cannot be
    /// resurrected past compaction).
    ///
    /// # Errors
    ///
    /// [`Error::CorruptPartial`] when the re-shipped encoding fails its
    /// CRC — counted like any refused shipment, and the hole stays.
    pub fn heal_encoded(&mut self, key: SketchKey, bytes: &[u8], epoch: u64) -> Result<bool> {
        if key.bucket_start_s + self.bucket_s <= self.evicted_before_s {
            return Ok(false);
        }
        let partial = match AggPartial::decode(bytes) {
            Ok(p) => p,
            Err(e) => {
                self.crc_failures += 1;
                return Err(e);
            }
        };
        self.folds += 1;
        self.entries.insert(key, Entry { partial, epoch });
        Ok(self.holes.remove(&key))
    }

    /// Advances `section`'s seal frontier to at least `through_s`:
    /// every record of the section created before it that the owner has
    /// shipped/received is folded in.
    pub fn seal(&mut self, section: u16, through_s: u64) {
        let slot = self.sealed.entry(section).or_insert(0);
        *slot = (*slot).max(through_s);
    }

    /// The seal frontier of `section` (0 when never sealed).
    pub fn sealed_through(&self, section: u16) -> u64 {
        self.sealed.get(&section).copied().unwrap_or(0)
    }

    /// Whether the ledger *provably* covers `[from_s, until_s)` for
    /// `section`: the window is bucket-aligned, nothing in it was
    /// compacted away, the seal frontier reaches the window end, and no
    /// bucket inside it is a coverage hole (a refused corrupt
    /// shipment). (The owner's pending frontier is the caller's check —
    /// the ledger cannot see unflushed arrivals.)
    pub fn covers(&self, section: u16, from_s: u64, until_s: u64) -> bool {
        from_s.is_multiple_of(self.bucket_s)
            && until_s.is_multiple_of(self.bucket_s)
            && from_s >= self.evicted_before_s
            && until_s <= self.sealed_through(section)
            && !self.has_hole(section, from_s, until_s)
    }

    /// Whether any bucket of `section` inside `[from_s, until_s)` is a
    /// coverage hole.
    fn has_hole(&self, section: u16, from_s: u64, until_s: u64) -> bool {
        if self.holes.is_empty() {
            return false;
        }
        self.holes.iter().any(|h| {
            h.section == section && h.bucket_start_s >= from_s && h.bucket_start_s < until_s
        })
    }

    /// The bucket partial at `key`, with the epoch that last folded it.
    pub fn entry(&self, key: &SketchKey) -> Option<(&AggPartial, u64)> {
        self.entries.get(key).map(|e| (&e.partial, e.epoch))
    }

    /// Merges every resident bucket of `(section, ty)` inside the
    /// **bucket-aligned** `[from_s, until_s)` into `acc`; returns how
    /// many partials were merged. Absent buckets are provably empty when
    /// [`SketchLedger::covers`] holds — callers must check it first
    /// (bucket partials cannot be sliced, so an unaligned window would
    /// over-include; debug builds assert the alignment).
    pub fn merge_range(
        &self,
        section: u16,
        ty: SensorType,
        from_s: u64,
        until_s: u64,
        acc: &mut AggPartial,
    ) -> u64 {
        debug_assert!(
            from_s.is_multiple_of(self.bucket_s) && until_s.is_multiple_of(self.bucket_s),
            "merge_range needs a bucket-aligned window, got [{from_s}, {until_s})"
        );
        let mut merged = 0;
        let mut bucket = self.bucket_start(from_s);
        while bucket < until_s {
            let key = SketchKey {
                section,
                ty,
                bucket_start_s: bucket,
            };
            if let Some(entry) = self.entries.get(&key) {
                acc.merge(&entry.partial);
                merged += 1;
            }
            bucket += self.bucket_s;
        }
        merged
    }

    /// Compaction: drops every bucket that ends at or before
    /// `deadline_s` and advances the eviction watermark to the last
    /// complete bucket boundary, so [`SketchLedger::covers`] stays
    /// honest. Returns the number of dropped partials.
    pub fn evict_older_than(&mut self, deadline_s: u64) -> usize {
        let boundary = self.bucket_start(deadline_s);
        if boundary == 0 {
            return 0;
        }
        self.evicted_before_s = self.evicted_before_s.max(boundary);
        // A hole behind the watermark stops mattering: covers() already
        // refuses everything there.
        self.holes
            .retain(|k| k.bucket_start_s + self.bucket_s > boundary);
        let before = self.entries.len();
        self.entries
            .retain(|k, _| k.bucket_start_s + self.bucket_s > boundary);
        before - self.entries.len()
    }

    /// The compaction watermark: every bucket starting at or after this
    /// instant is still resident.
    pub fn evicted_before_s(&self) -> u64 {
        self.evicted_before_s
    }

    /// Iterates the resident keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &SketchKey> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(section: u16, bucket: u64) -> SketchKey {
        SketchKey {
            section,
            ty: SensorType::Traffic,
            bucket_start_s: bucket,
        }
    }

    fn partial(values: &[(f64, u64)]) -> AggPartial {
        let mut p = AggPartial::empty();
        for &(v, k) in values {
            p.absorb(v, k);
        }
        p
    }

    #[test]
    fn zero_bucket_width_is_refused() {
        assert!(matches!(SketchLedger::new(0), Err(Error::EmptyWindow)));
    }

    #[test]
    fn folds_merge_and_stamp_the_latest_epoch() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.fold(key(3, 900), &partial(&[(1.0, 1)]), 1);
        ledger.fold(key(3, 900), &partial(&[(5.0, 2)]), 4);
        let (p, epoch) = ledger.entry(&key(3, 900)).unwrap();
        assert_eq!(p.count(), 2);
        assert_eq!(p.minmax().max, Some(5.0));
        assert_eq!(epoch, 4);
        assert_eq!(ledger.folds(), 2);
    }

    #[test]
    fn encoded_folds_verify_their_crc() {
        let mut ledger = SketchLedger::new(900).unwrap();
        let wire = partial(&[(2.0, 9)]).encode();
        ledger.fold_encoded(key(0, 0), &wire, 1).unwrap();
        let mut bad = wire.clone();
        bad[8] ^= 1;
        assert!(ledger.fold_encoded(key(0, 900), &bad, 1).is_err());
        assert_eq!(ledger.crc_failures(), 1);
        assert_eq!(ledger.len(), 1, "the corrupt shipment was not merged");
    }

    #[test]
    fn coverage_requires_alignment_seal_and_residency() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.seal(7, 2_700);
        assert!(ledger.covers(7, 0, 2_700));
        assert!(ledger.covers(7, 900, 1_800));
        assert!(!ledger.covers(7, 0, 3_600), "past the seal frontier");
        assert!(!ledger.covers(7, 0, 1_000), "unaligned end");
        assert!(!ledger.covers(7, 10, 910), "unaligned start");
        assert!(!ledger.covers(8, 0, 900), "other sections are unsealed");
    }

    #[test]
    fn merge_range_folds_only_the_window() {
        let mut ledger = SketchLedger::new(900).unwrap();
        for bucket in [0u64, 900, 1_800, 2_700] {
            ledger.fold(
                key(1, bucket),
                &partial(&[(bucket as f64, bucket / 900)]),
                1,
            );
        }
        let mut acc = AggPartial::empty();
        let merged = ledger.merge_range(1, SensorType::Traffic, 900, 2_700, &mut acc);
        assert_eq!(merged, 2);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.minmax().min, Some(900.0));
        assert_eq!(acc.minmax().max, Some(1_800.0));
        // Other types and sections stay out.
        let mut other = AggPartial::empty();
        assert_eq!(
            ledger.merge_range(1, SensorType::Weather, 0, 3_600, &mut other),
            0
        );
    }

    #[test]
    fn compaction_drops_old_buckets_and_moves_the_watermark() {
        let mut ledger = SketchLedger::new(900).unwrap();
        for bucket in [0u64, 900, 1_800] {
            ledger.fold(key(2, bucket), &partial(&[(1.0, 1)]), 1);
        }
        ledger.seal(2, 2_700);
        let dropped = ledger.evict_older_than(1_000);
        assert_eq!(dropped, 1, "only the bucket fully before 900 goes");
        assert_eq!(ledger.evicted_before_s(), 900);
        assert!(!ledger.covers(2, 0, 900), "evicted windows stop proving");
        assert!(ledger.covers(2, 900, 2_700), "surviving windows still do");
        // The watermark never moves backwards.
        ledger.evict_older_than(500);
        assert_eq!(ledger.evicted_before_s(), 900);
    }

    #[test]
    fn holes_block_coverage_and_compact_away() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.seal(4, 2_700);
        assert!(ledger.covers(4, 0, 2_700));
        ledger.mark_hole(key(4, 900));
        assert!(!ledger.covers(4, 0, 2_700), "the hole breaks the window");
        assert!(!ledger.covers(4, 900, 1_800), "the holed bucket itself");
        assert!(
            ledger.covers(4, 0, 900),
            "windows before the hole still prove"
        );
        assert!(ledger.covers(4, 1_800, 2_700), "and after it");
        assert!(ledger.covers(5, 0, 0), "other sections are unaffected");
        // Compaction past the hole retires it with the watermark.
        ledger.evict_older_than(1_800);
        assert_eq!(ledger.holes().count(), 0);
        assert!(ledger.covers(4, 1_800, 2_700));
    }

    #[test]
    fn mark_hole_is_idempotent_under_repeated_corrupt_relays() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.seal(3, 3_600);
        let wire = partial(&[(1.0, 4)]).encode();
        let mut bad = wire.clone();
        bad[6] ^= 0xFF;
        // The same corrupt shipment relayed over and over: one hole.
        for _ in 0..5 {
            assert!(ledger.fold_encoded(key(3, 900), &bad, 1).is_err());
            ledger.mark_hole(key(3, 900));
        }
        assert_eq!(ledger.holes().count(), 1);
        assert_eq!(ledger.crc_failures(), 5, "every refusal is counted");
        assert!(!ledger.covers(3, 900, 1_800));
        assert!(ledger.covers(3, 0, 900), "neighbors still prove");
        // A hole behind the compaction watermark is refused outright:
        // compaction already blocks coverage there, so stale relays
        // cannot regrow the set.
        ledger.evict_older_than(1_800);
        assert_eq!(ledger.holes().count(), 0);
        ledger.mark_hole(key(3, 0));
        ledger.mark_hole(key(3, 900));
        assert_eq!(ledger.holes().count(), 0, "below-watermark relays drop");
        ledger.mark_hole(key(3, 1_800));
        assert_eq!(ledger.holes().count(), 1, "resident buckets still hole");
    }

    #[test]
    fn heal_restores_coverage_with_the_authoritative_partial() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.seal(7, 1_800);
        // A fragment of the bucket arrived before the corrupt shipment.
        ledger.fold(key(7, 900), &partial(&[(1.0, 1)]), 1);
        ledger.mark_hole(key(7, 900));
        assert!(!ledger.covers(7, 900, 1_800));
        // The shipper re-ships its full fold: 3 observations.
        let full = partial(&[(1.0, 1), (2.0, 2), (3.0, 3)]);
        let healed = ledger.heal_encoded(key(7, 900), &full.encode(), 2).unwrap();
        assert!(healed);
        assert!(ledger.covers(7, 900, 1_800), "coverage is restored");
        let (p, epoch) = ledger.entry(&key(7, 900)).unwrap();
        assert_eq!(p.count(), 3, "replaced, not merged — no double count");
        assert_eq!(epoch, 2);
        // Healing an intact bucket is a no-op on the hole set.
        assert!(!ledger.heal_encoded(key(7, 900), &full.encode(), 3).unwrap());
        // A corrupt re-ship is refused and the hole stays.
        ledger.mark_hole(key(7, 0));
        let mut bad = full.encode();
        bad[4] ^= 1;
        assert!(ledger.heal_encoded(key(7, 0), &bad, 3).is_err());
        assert!(ledger.is_hole(&key(7, 0)));
        // Behind the watermark the heal is refused without decoding.
        ledger.evict_older_than(900);
        assert!(!ledger.heal_encoded(key(7, 0), &full.encode(), 4).unwrap());
        assert!(ledger.covers(7, 900, 1_800));
    }

    #[test]
    fn holes_sorted_is_key_ordered() {
        let mut ledger = SketchLedger::new(900).unwrap();
        ledger.mark_hole(key(9, 1_800));
        ledger.mark_hole(key(2, 900));
        ledger.mark_hole(key(9, 0));
        let sorted = ledger.holes_sorted();
        assert_eq!(sorted, vec![key(2, 900), key(9, 0), key(9, 1_800)]);
    }

    #[test]
    fn seals_are_monotone() {
        let mut ledger = SketchLedger::new(60).unwrap();
        ledger.seal(0, 600);
        ledger.seal(0, 120);
        assert_eq!(ledger.sealed_through(0), 600);
        assert_eq!(ledger.sealed_through(1), 0);
    }
}
