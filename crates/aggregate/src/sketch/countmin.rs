//! Count-min sketch: approximate frequency counting in fixed memory.

use super::hash64;
use crate::{Error, Result};

/// A count-min sketch with `depth` hash rows of `width` counters.
///
/// Estimates are upper-biased: `estimate(x) >= true_count(x)`, with error
/// at most `2N/width` with probability `1 - 2^-depth` (N = stream length).
///
/// # Examples
///
/// ```
/// use f2c_aggregate::sketch::CountMinSketch;
///
/// let mut cm = CountMinSketch::new(1024, 4)?;
/// for _ in 0..100 { cm.add(b"plaza-catalunya"); }
/// cm.add(b"sagrada-familia");
/// assert!(cm.estimate(b"plaza-catalunya") >= 100);
/// assert!(cm.estimate(b"sagrada-familia") >= 1);
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<u64>,
    items: u64,
}

impl CountMinSketch {
    /// Creates a sketch.
    ///
    /// # Errors
    ///
    /// [`Error::DegenerateSketch`] if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> Result<Self> {
        if width == 0 {
            return Err(Error::DegenerateSketch { parameter: "width" });
        }
        if depth == 0 {
            return Err(Error::DegenerateSketch { parameter: "depth" });
        }
        Ok(Self {
            width,
            depth,
            rows: vec![0; width * depth],
            items: 0,
        })
    }

    /// Adds one occurrence of `key`.
    pub fn add(&mut self, key: &[u8]) {
        self.add_n(key, 1);
    }

    /// Adds `n` occurrences of `key`.
    pub fn add_n(&mut self, key: &[u8], n: u64) {
        for d in 0..self.depth {
            let idx = (hash64(key, d as u64) % self.width as u64) as usize;
            self.rows[d * self.width + idx] += n;
        }
        self.items += n;
    }

    /// Estimated occurrence count of `key` (never underestimates).
    pub fn estimate(&self, key: &[u8]) -> u64 {
        (0..self.depth)
            .map(|d| {
                let idx = (hash64(key, d as u64) % self.width as u64) as usize;
                self.rows[d * self.width + idx]
            })
            .min()
            .unwrap_or(0)
    }

    /// Total occurrences added.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Merges another sketch with identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch — merging incompatible sketches is a
    /// programming error, not a data error.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "cannot merge sketches of different shapes"
        );
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a += b;
        }
        self.items += other.items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(256, 4).unwrap();
        let mut truth = std::collections::HashMap::new();
        for i in 0..5_000u32 {
            let key = format!("k{}", i % 97);
            cm.add(key.as_bytes());
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (key, count) in truth {
            assert!(cm.estimate(key.as_bytes()) >= count);
        }
    }

    #[test]
    fn error_is_bounded_for_wide_sketch() {
        let mut cm = CountMinSketch::new(4096, 5).unwrap();
        for i in 0..10_000u32 {
            cm.add(&(i % 50).to_le_bytes());
        }
        // Each of the 50 keys has 200 occurrences; slack 2N/width ≈ 5.
        for i in 0..50u32 {
            let est = cm.estimate(&i.to_le_bytes());
            assert!((200..=230).contains(&est), "key {i} estimated {est}");
        }
    }

    #[test]
    fn absent_keys_estimate_near_zero_when_sparse() {
        let mut cm = CountMinSketch::new(4096, 4).unwrap();
        cm.add(b"only-key");
        assert_eq!(cm.estimate(b"never-seen"), 0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CountMinSketch::new(512, 4).unwrap();
        let mut b = CountMinSketch::new(512, 4).unwrap();
        let mut whole = CountMinSketch::new(512, 4).unwrap();
        for i in 0..1000u32 {
            let key = (i % 31).to_le_bytes();
            if i % 2 == 0 {
                a.add(&key);
            } else {
                b.add(&key);
            }
            whole.add(&key);
        }
        a.merge(&b);
        assert_eq!(a.items(), whole.items());
        for i in 0..31u32 {
            assert_eq!(
                a.estimate(&i.to_le_bytes()),
                whole.estimate(&i.to_le_bytes())
            );
        }
    }

    #[test]
    fn degenerate_dimensions_rejected() {
        assert!(CountMinSketch::new(0, 4).is_err());
        assert!(CountMinSketch::new(4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merging_mismatched_shapes_panics() {
        let mut a = CountMinSketch::new(16, 2).unwrap();
        let b = CountMinSketch::new(32, 2).unwrap();
        a.merge(&b);
    }

    #[test]
    fn add_n_is_equivalent_to_repeated_add() {
        let mut a = CountMinSketch::new(64, 3).unwrap();
        let mut b = CountMinSketch::new(64, 3).unwrap();
        a.add_n(b"x", 10);
        for _ in 0..10 {
            b.add(b"x");
        }
        assert_eq!(a, b);
    }
}
