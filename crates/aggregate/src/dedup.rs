//! Redundant-data elimination — the paper's first evaluated aggregation
//! technique (§V.A): "each sensor sends the current temperature
//! measurements, but this type of data is prone to repetitions, so
//! eliminating them may easily reduce such amount of data".
//!
//! [`RedundancyFilter`] remembers each sensor's last admitted value and
//! suppresses exact repetitions. An optional *maximum suppression age*
//! bounds how long a value can be suppressed before being re-admitted as a
//! heartbeat (so downstream consumers can distinguish "unchanged" from
//! "dead sensor") — disabled by default, matching the paper's accounting.

use std::collections::HashMap;

use scc_sensors::{Reading, SensorId, Value};

/// Counters describing what a filter did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Readings offered to the filter.
    pub seen: u64,
    /// Readings admitted (forwarded upward).
    pub admitted: u64,
    /// Readings suppressed as redundant.
    pub suppressed: u64,
    /// Suppressed readings re-admitted due to the heartbeat age bound.
    pub heartbeats: u64,
}

impl DedupStats {
    /// Fraction of offered readings that were suppressed.
    pub fn suppression_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.suppressed as f64 / self.seen as f64
        }
    }
}

#[derive(Debug, Clone)]
struct LastSeen {
    value: Value,
    admitted_at: u64,
}

/// Per-sensor exact-repetition suppressor.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::RedundancyFilter;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let id = SensorId::new(SensorType::Temperature, 0);
/// let mut f = RedundancyFilter::new();
/// assert!(f.admit(&Reading::new(id, 0, Value::from_f64(20.0))));
/// assert!(!f.admit(&Reading::new(id, 60, Value::from_f64(20.0)))); // repeat
/// assert!(f.admit(&Reading::new(id, 120, Value::from_f64(20.5)))); // change
/// ```
#[derive(Debug, Clone, Default)]
pub struct RedundancyFilter {
    last: HashMap<SensorId, LastSeen>,
    max_suppress_secs: Option<u64>,
    stats: DedupStats,
}

impl RedundancyFilter {
    /// A filter with no heartbeat bound (pure elimination, as in the paper).
    pub fn new() -> Self {
        Self::default()
    }

    /// A filter that re-admits an unchanged value once `max_secs` have
    /// passed since the last admission for that sensor.
    pub fn with_heartbeat(max_secs: u64) -> Self {
        Self {
            last: HashMap::new(),
            max_suppress_secs: Some(max_secs),
            stats: DedupStats::default(),
        }
    }

    /// Decides whether `reading` must be forwarded; updates filter state.
    pub fn admit(&mut self, reading: &Reading) -> bool {
        self.stats.seen += 1;
        let now = reading.timestamp_s();
        match self.last.get_mut(&reading.sensor()) {
            Some(entry) if entry.value == *reading.value() => {
                let expired = self
                    .max_suppress_secs
                    .is_some_and(|max| now.saturating_sub(entry.admitted_at) >= max);
                if expired {
                    entry.admitted_at = now;
                    self.stats.admitted += 1;
                    self.stats.heartbeats += 1;
                    true
                } else {
                    self.stats.suppressed += 1;
                    false
                }
            }
            _ => {
                self.last.insert(
                    reading.sensor(),
                    LastSeen {
                        value: reading.value().clone(),
                        admitted_at: now,
                    },
                );
                self.stats.admitted += 1;
                true
            }
        }
    }

    /// Filters a batch, returning only the admitted readings.
    pub fn filter_batch(&mut self, readings: Vec<Reading>) -> Vec<Reading> {
        readings.into_iter().filter(|r| self.admit(r)).collect()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Number of sensors the filter currently tracks.
    pub fn tracked_sensors(&self) -> usize {
        self.last.len()
    }

    /// Clears per-sensor memory (stats are kept).
    pub fn reset_memory(&mut self) {
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{ReadingGenerator, SensorType};

    fn reading(idx: u32, t: u64, v: f64) -> Reading {
        Reading::new(
            SensorId::new(SensorType::Temperature, idx),
            t,
            Value::from_f64(v),
        )
    }

    #[test]
    fn first_reading_is_always_admitted() {
        let mut f = RedundancyFilter::new();
        assert!(f.admit(&reading(0, 0, 1.0)));
        assert!(f.admit(&reading(1, 0, 1.0))); // different sensor, same value
    }

    #[test]
    fn exact_repeats_are_suppressed_indefinitely_without_heartbeat() {
        let mut f = RedundancyFilter::new();
        f.admit(&reading(0, 0, 5.0));
        for t in 1..1000 {
            assert!(!f.admit(&reading(0, t * 900, 5.0)));
        }
        assert_eq!(f.stats().suppressed, 999);
    }

    #[test]
    fn heartbeat_bound_readmits_stale_values() {
        let mut f = RedundancyFilter::with_heartbeat(3600);
        f.admit(&reading(0, 0, 5.0));
        assert!(!f.admit(&reading(0, 900, 5.0)));
        assert!(!f.admit(&reading(0, 1800, 5.0)));
        assert!(f.admit(&reading(0, 3600, 5.0))); // heartbeat
        assert!(!f.admit(&reading(0, 4500, 5.0))); // suppression restarts
        assert_eq!(f.stats().heartbeats, 1);
    }

    #[test]
    fn value_change_resets_suppression() {
        let mut f = RedundancyFilter::new();
        f.admit(&reading(0, 0, 5.0));
        assert!(f.admit(&reading(0, 60, 6.0)));
        assert!(!f.admit(&reading(0, 120, 6.0)));
        assert!(f.admit(&reading(0, 180, 5.0))); // back to an old value is a change
    }

    #[test]
    fn batch_filtering_preserves_order() {
        let mut f = RedundancyFilter::new();
        let batch = vec![
            reading(0, 0, 1.0),
            reading(0, 60, 1.0),
            reading(1, 60, 2.0),
            reading(0, 120, 3.0),
        ];
        let kept = f.filter_batch(batch);
        let times: Vec<u64> = kept.iter().map(Reading::timestamp_s).collect();
        assert_eq!(times, vec![0, 60, 120]);
    }

    #[test]
    fn measured_suppression_matches_generator_redundancy() {
        // End-to-end calibration: generator redundancy in, same rate out.
        for (ty, expected) in [
            (SensorType::Temperature, 0.50),
            (SensorType::NoiseTrafficZone, 0.75),
            (SensorType::ContainerGlass, 0.70),
            (SensorType::ParkingSpot, 0.40),
            (SensorType::AirQuality, 0.30),
        ] {
            let mut gen = ReadingGenerator::for_population(ty, 100, 9);
            let mut f = RedundancyFilter::new();
            for w in 0..100u64 {
                for r in gen.wave(w * 60) {
                    f.admit(&r);
                }
            }
            let rate = f.stats().suppression_rate();
            assert!(
                (rate - expected).abs() < 0.04,
                "{ty}: suppression {rate:.3}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn stats_are_consistent() {
        let mut f = RedundancyFilter::with_heartbeat(100);
        for t in 0..50 {
            f.admit(&reading(0, t * 30, 1.0));
        }
        let s = f.stats();
        assert_eq!(s.seen, 50);
        assert_eq!(s.admitted + s.suppressed, s.seen);
        assert!(s.heartbeats > 0 && s.heartbeats <= s.admitted);
    }

    #[test]
    fn reset_memory_keeps_stats_but_forgets_values() {
        let mut f = RedundancyFilter::new();
        f.admit(&reading(0, 0, 1.0));
        f.reset_memory();
        assert_eq!(f.tracked_sensors(), 0);
        assert!(f.admit(&reading(0, 60, 1.0))); // re-admitted after reset
        assert_eq!(f.stats().seen, 2);
    }
}
