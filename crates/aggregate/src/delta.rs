//! Delta encoding of numeric series — one of the "bandwidth reduction"
//! techniques in the paper's aggregation menu (§V.A). Slowly varying
//! sensor series (temperatures, meter totals) turn into long runs of small
//! deltas, which downstream compression then squeezes far harder than the
//! raw values.

/// Delta-encodes a series: `out[0] = in[0]`, `out[i] = in[i] − in[i−1]`
/// (wrapping, so decoding is exact for any `i64` inputs).
///
/// # Examples
///
/// ```
/// use f2c_aggregate::delta::{encode, decode};
///
/// let series = vec![100, 101, 101, 103, 102];
/// let deltas = encode(&series);
/// assert_eq!(deltas, vec![100, 1, 0, 2, -1]);
/// assert_eq!(decode(&deltas), series);
/// ```
pub fn encode(series: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(series.len());
    let mut prev = 0i64;
    for (i, &v) in series.iter().enumerate() {
        if i == 0 {
            out.push(v);
        } else {
            out.push(v.wrapping_sub(prev));
        }
        prev = v;
    }
    out
}

/// Inverts [`encode`].
pub fn decode(deltas: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(deltas.len());
    let mut acc = 0i64;
    for (i, &d) in deltas.iter().enumerate() {
        acc = if i == 0 { d } else { acc.wrapping_add(d) };
        out.push(acc);
    }
    out
}

/// Zig-zag maps signed deltas to unsigned (small magnitudes → small
/// codes), the standard pre-step before varint/entropy coding.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes a series as zig-zag varints — the compact wire form a fog
/// node would ship for a numeric column.
pub fn to_varint_bytes(series: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(series.len() * 2);
    for &d in &encode(series) {
        let mut z = zigzag(d);
        loop {
            let byte = (z & 0x7F) as u8;
            z >>= 7;
            if z == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    out
}

/// Inverts [`to_varint_bytes`]; `None` on a truncated stream.
pub fn from_varint_bytes(data: &[u8]) -> Option<Vec<i64>> {
    let mut deltas = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let mut z = 0u64;
        let mut shift = 0u32;
        loop {
            if i >= data.len() || shift >= 64 {
                return None;
            }
            let byte = data[i];
            i += 1;
            z |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        deltas.push(unzigzag(z));
    }
    Some(decode(&deltas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        for series in [
            vec![],
            vec![42],
            vec![0, 0, 0],
            vec![i64::MAX, i64::MIN, 0, -1, 1],
            (0..1000).map(|i| i * i % 977 - 400).collect::<Vec<_>>(),
        ] {
            assert_eq!(decode(&encode(&series)), series);
            assert_eq!(
                from_varint_bytes(&to_varint_bytes(&series)).unwrap(),
                series
            );
        }
    }

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for v in [-3i64, -2, -1, 0, 1, 2, 3, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes get small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn slowly_varying_series_shrink() {
        // A meter-like series: large base, tiny increments.
        let series: Vec<i64> = (0..2_000).map(|i| 5_000_000 + i * 3).collect();
        let packed = to_varint_bytes(&series);
        // 2000 × 8 raw bytes vs ~1 byte/delta after the first.
        assert!(packed.len() < 2_200, "got {} bytes", packed.len());
    }

    #[test]
    fn delta_plus_deflate_beats_deflate_alone_on_counters() {
        let series: Vec<i64> = (0..5_000).map(|i| 1_000_000 + i * 7 + (i % 3)).collect();
        let raw: Vec<u8> = series.iter().flat_map(|v| v.to_le_bytes()).collect();
        let direct = f2c_compress::compress(&raw).unwrap().len();
        let delta = f2c_compress::compress(&to_varint_bytes(&series))
            .unwrap()
            .len();
        assert!(
            delta < direct,
            "delta+deflate {delta} should beat deflate {direct}"
        );
    }

    #[test]
    fn truncated_varints_are_detected() {
        let mut packed = to_varint_bytes(&[300, 400, 500]);
        packed.pop();
        // Either a clean None (truncated final varint) — never a panic.
        let _ = from_varint_bytes(&packed);
        assert_eq!(from_varint_bytes(&[0x80]), None);
    }
}
