//! Decomposable aggregate functions.
//!
//! The survey the paper leans on (§V.A, \[20\]) classifies computations into
//! *decomposable* functions — those computable from mergeable partial
//! states — and complex ones. Decomposability is exactly what the F2C
//! hierarchy exploits: fog-1 nodes fold their sensors into a partial state,
//! fog-2 merges its children's states, the cloud merges districts. The
//! result is identical to centralized computation while only partial states
//! cross the network.

/// A commutative, associative partial aggregation state.
///
/// Laws (checked by property tests):
/// * merge is associative and commutative,
/// * the empty state is a merge identity,
/// * `fold(xs).merge(fold(ys)) == fold(xs ++ ys)`.
pub trait Decomposable: Sized + Clone {
    /// The identity state.
    fn empty() -> Self;
    /// Absorbs one observation.
    fn absorb(&mut self, value: f64);
    /// Merges another partial state into this one.
    fn merge(&mut self, other: &Self);
}

/// Folds an iterator of values into a partial state.
pub fn fold<S: Decomposable>(values: impl IntoIterator<Item = f64>) -> S {
    let mut s = S::empty();
    for v in values {
        s.absorb(v);
    }
    s
}

/// Sum and count (the base for averages).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SumCount {
    /// Running sum.
    pub sum: f64,
    /// Number of absorbed values.
    pub count: u64,
}

impl SumCount {
    /// The mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Decomposable for SumCount {
    fn empty() -> Self {
        Self::default()
    }

    fn absorb(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Minimum and maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Smallest absorbed value (`None` when empty).
    pub min: Option<f64>,
    /// Largest absorbed value.
    pub max: Option<f64>,
}

impl Decomposable for MinMax {
    fn empty() -> Self {
        Self {
            min: None,
            max: None,
        }
    }

    fn absorb(&mut self, value: f64) {
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    fn merge(&mut self, other: &Self) {
        if let Some(m) = other.min {
            self.absorb(m);
        }
        if let Some(m) = other.max {
            self.absorb(m);
        }
    }
}

/// Mean and variance via a merge-friendly formulation (sum, sum of squares,
/// count). Numerically adequate for the bounded sensor magnitudes used
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    /// Running sum.
    pub sum: f64,
    /// Running sum of squares.
    pub sum_sq: f64,
    /// Number of absorbed values.
    pub count: u64,
}

impl Moments {
    /// The mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        self.mean()
            .map(|m| (self.sum_sq / self.count as f64 - m * m).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

impl Decomposable for Moments {
    fn empty() -> Self {
        Self::default()
    }

    fn absorb(&mut self, value: f64) {
        self.sum += value;
        self.sum_sq += value * value;
        self.count += 1;
    }

    fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sumcount_mean() {
        let s: SumCount = fold([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(SumCount::empty().mean(), None);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let s: MinMax = fold([3.0, -1.0, 7.5]);
        assert_eq!(s.min, Some(-1.0));
        assert_eq!(s.max, Some(7.5));
    }

    #[test]
    fn moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m: Moments = fold(xs);
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.variance(), Some(4.0));
        assert_eq!(m.std_dev(), Some(2.0));
    }

    #[test]
    fn hierarchical_merge_equals_flat_fold() {
        // Simulate fog-1 partials merged at fog-2 then cloud.
        let all: Vec<f64> = (0..100).map(|i| (i % 13) as f64 * 1.5).collect();
        let flat: Moments = fold(all.iter().copied());
        let mut merged = Moments::empty();
        for chunk in all.chunks(7) {
            let partial: Moments = fold(chunk.iter().copied());
            merged.merge(&partial);
        }
        assert!((flat.mean().unwrap() - merged.mean().unwrap()).abs() < 1e-9);
        assert!((flat.variance().unwrap() - merged.variance().unwrap()).abs() < 1e-9);
        assert_eq!(flat.count, merged.count);
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut s: SumCount = fold([1.0, 2.0]);
        let before = s;
        s.merge(&SumCount::empty());
        assert_eq!(s, before);
        let mut e = MinMax::empty();
        let partial: MinMax = fold([5.0]);
        e.merge(&partial);
        assert_eq!(e.min, Some(5.0));
    }
}
