//! Composable per-fog-node aggregation pipelines.
//!
//! §IV.D: having just-collected data at fog layer 1 "allows additional
//! optimization implementations, such as performing some data aggregation
//! techniques to reduce the volume of data to be transmitted upwards". An
//! [`AggregationPlan`] is an ordered list of [`Stage`]s a fog node applies
//! to a batch before flushing it to its parent; the [`PlanReport`] records
//! reading counts in/out of every stage for the traffic experiments.

use scc_sensors::Reading;

use crate::dedup::RedundancyFilter;
use crate::window::WindowCombiner;
use crate::Result;

/// One processing stage of a plan.
#[derive(Debug)]
pub enum Stage {
    /// Redundant-data elimination.
    Dedup(RedundancyFilter),
    /// Tumbling-window combination: replaces a sensor's readings in each
    /// closed window with a single synthetic "last value" reading.
    Window(WindowCombiner),
}

impl Stage {
    fn name(&self) -> &'static str {
        match self {
            Stage::Dedup(_) => "dedup",
            Stage::Window(_) => "window",
        }
    }
}

/// Per-stage counters from one [`AggregationPlan::apply`] call or their
/// accumulation over many calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanReport {
    /// (stage name, readings in, readings out), in stage order.
    pub stages: Vec<(&'static str, u64, u64)>,
}

impl PlanReport {
    /// Total readings offered to the first stage.
    pub fn input_count(&self) -> u64 {
        self.stages.first().map_or(0, |s| s.1)
    }

    /// Total readings emitted by the last stage.
    pub fn output_count(&self) -> u64 {
        self.stages.last().map_or(0, |s| s.2)
    }

    /// Overall reduction fraction `1 − out/in` (0 when empty).
    pub fn reduction(&self) -> f64 {
        let input = self.input_count();
        if input == 0 {
            0.0
        } else {
            1.0 - self.output_count() as f64 / input as f64
        }
    }

    /// Accumulates another report (stage lists must match).
    pub fn merge(&mut self, other: &PlanReport) {
        if self.stages.is_empty() {
            self.stages = other.stages.clone();
            return;
        }
        assert_eq!(
            self.stages.len(),
            other.stages.len(),
            "cannot merge reports from different plans"
        );
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            assert_eq!(a.0, b.0, "stage order mismatch");
            a.1 += b.1;
            a.2 += b.2;
        }
    }
}

/// An ordered aggregation pipeline applied batch-by-batch.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::{AggregationPlan, RedundancyFilter, Stage};
/// use scc_sensors::{ReadingGenerator, SensorType};
///
/// let mut plan = AggregationPlan::new(vec![Stage::Dedup(RedundancyFilter::new())]);
/// let mut gen = ReadingGenerator::for_population(SensorType::ContainerGlass, 100, 5);
/// for w in 0..50u64 {
///     plan.apply(gen.wave(w * 2400));
/// }
/// // Garbage sensors repeat ~70% of readings (Table I).
/// assert!((plan.report().reduction() - 0.70).abs() < 0.05);
/// ```
#[derive(Debug, Default)]
pub struct AggregationPlan {
    stages: Vec<Stage>,
    report: PlanReport,
}

impl AggregationPlan {
    /// Creates a plan from ordered stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        let report = PlanReport {
            stages: stages.iter().map(|s| (s.name(), 0, 0)).collect(),
        };
        Self { stages, report }
    }

    /// A pass-through plan (no aggregation — the centralized baseline).
    pub fn passthrough() -> Self {
        Self::new(Vec::new())
    }

    /// The paper's fog-layer-1 configuration: redundant-data elimination.
    /// (Compression happens at flush time on the encoded batch, see
    /// `f2c-core`.)
    pub fn paper_fog1() -> Self {
        Self::new(vec![Stage::Dedup(RedundancyFilter::new())])
    }

    /// Applies all stages to a batch, returning the surviving readings.
    pub fn apply(&mut self, batch: Vec<Reading>) -> Vec<Reading> {
        let mut current = batch;
        for (stage, counters) in self.stages.iter_mut().zip(&mut self.report.stages) {
            counters.1 += current.len() as u64;
            current = match stage {
                Stage::Dedup(filter) => filter.filter_batch(current),
                Stage::Window(combiner) => {
                    let mut out = Vec::new();
                    for r in &current {
                        if let Some(summary) = combiner.offer(r) {
                            out.push(Reading::new(
                                summary.sensor,
                                summary.window_start_s + combiner.window_secs() - 1,
                                scc_sensors::Value::from_f64(summary.last),
                            ));
                        }
                    }
                    out
                }
            };
            counters.2 += current.len() as u64;
        }
        current
    }

    /// Flushes any stage-internal state (open windows) as final readings.
    pub fn finish(&mut self) -> Result<Vec<Reading>> {
        let mut out = Vec::new();
        for (stage, counters) in self.stages.iter_mut().zip(&mut self.report.stages) {
            if let Stage::Window(combiner) = stage {
                for summary in combiner.close_windows_before(u64::MAX) {
                    out.push(Reading::new(
                        summary.sensor,
                        summary.window_start_s,
                        scc_sensors::Value::from_f64(summary.last),
                    ));
                    counters.2 += 1;
                }
            }
        }
        Ok(out)
    }

    /// Accumulated per-stage counters.
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{ReadingGenerator, SensorType};

    #[test]
    fn passthrough_changes_nothing() {
        let mut plan = AggregationPlan::passthrough();
        let mut gen = ReadingGenerator::for_population(SensorType::Weather, 10, 1);
        let batch = gen.wave(0);
        let out = plan.apply(batch.clone());
        assert_eq!(out, batch);
        assert_eq!(plan.report().reduction(), 0.0);
    }

    #[test]
    fn dedup_then_window_compose() {
        let mut plan = AggregationPlan::new(vec![
            Stage::Dedup(RedundancyFilter::new()),
            Stage::Window(WindowCombiner::new(3600).unwrap()),
        ]);
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 20, 3);
        let mut emitted = 0usize;
        for w in 0..96u64 {
            emitted += plan.apply(gen.wave(w * 900)).len();
        }
        emitted += plan.finish().unwrap().len();
        // 20 sensors × 24 hours ≥ summaries; far fewer than 20×96 readings.
        assert!(emitted <= 20 * 25);
        assert!(plan.report().reduction() > 0.5);
    }

    #[test]
    fn report_counts_are_conserved_per_stage() {
        let mut plan = AggregationPlan::paper_fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 50, 3);
        for w in 0..20u64 {
            plan.apply(gen.wave(w * 864));
        }
        let r = plan.report();
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].1, 50 * 20);
        assert!(r.stages[0].2 <= r.stages[0].1);
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = PlanReport {
            stages: vec![("dedup", 10, 5)],
        };
        let b = PlanReport {
            stages: vec![("dedup", 30, 15)],
        };
        a.merge(&b);
        assert_eq!(a.stages[0], ("dedup", 40, 20));
        assert_eq!(a.reduction(), 0.5);
    }

    #[test]
    fn empty_report_merges_from_scratch() {
        let mut a = PlanReport::default();
        let b = PlanReport {
            stages: vec![("dedup", 4, 2)],
        };
        a.merge(&b);
        assert_eq!(a, b);
    }
}
