//! Tumbling-window combination: many readings in, one summary out.
//!
//! This is the "data combination" technique from the paper's aggregation
//! menu (§V.A): instead of forwarding every observation upward, a fog node
//! can forward one summary per sensor per window. The summary keeps the
//! moments a consumer needs (count/min/max/mean/last), so fog-2 and cloud
//! analytics remain possible on combined data.

use std::collections::HashMap;

use scc_sensors::{Reading, SensorId};

use crate::{Error, Result};

/// Summary of one sensor's readings within one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// The summarized sensor.
    pub sensor: SensorId,
    /// Window start (inclusive), seconds.
    pub window_start_s: u64,
    /// Number of readings combined.
    pub count: u64,
    /// Minimum magnitude observed.
    pub min: f64,
    /// Maximum magnitude observed.
    pub max: f64,
    /// Mean magnitude.
    pub mean: f64,
    /// Magnitude of the last (most recent) reading.
    pub last: f64,
}

#[derive(Debug, Clone)]
struct Accum {
    window_start_s: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
    last_ts: u64,
}

/// Tumbling-window combiner keyed by sensor.
///
/// Feed readings in any order; closing a window emits one
/// [`WindowSummary`] per sensor that reported in it.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::WindowCombiner;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let id = SensorId::new(SensorType::Temperature, 0);
/// let mut w = WindowCombiner::new(3600)?; // 1-hour windows
/// w.offer(&Reading::new(id, 100, Value::from_f64(20.0)));
/// w.offer(&Reading::new(id, 200, Value::from_f64(22.0)));
/// let summaries = w.close_windows_before(3600);
/// assert_eq!(summaries.len(), 1);
/// assert_eq!(summaries[0].count, 2);
/// assert_eq!(summaries[0].mean, 21.0);
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct WindowCombiner {
    window_secs: u64,
    open: HashMap<SensorId, Accum>,
}

impl WindowCombiner {
    /// Creates a combiner with `window_secs`-long tumbling windows.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyWindow`] if `window_secs` is zero.
    pub fn new(window_secs: u64) -> Result<Self> {
        if window_secs == 0 {
            return Err(Error::EmptyWindow);
        }
        Ok(Self {
            window_secs,
            open: HashMap::new(),
        })
    }

    /// Window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// The window start for a timestamp.
    pub fn window_start(&self, timestamp_s: u64) -> u64 {
        timestamp_s - timestamp_s % self.window_secs
    }

    /// Offers one reading. If the reading opens a *newer* window for its
    /// sensor, the previous window's summary is returned (tumbled out).
    pub fn offer(&mut self, reading: &Reading) -> Option<WindowSummary> {
        let start = self.window_start(reading.timestamp_s());
        let mag = reading.value().magnitude();
        let ts = reading.timestamp_s();
        match self.open.get_mut(&reading.sensor()) {
            Some(acc) if acc.window_start_s == start => {
                acc.count += 1;
                acc.sum += mag;
                acc.min = acc.min.min(mag);
                acc.max = acc.max.max(mag);
                if ts >= acc.last_ts {
                    acc.last = mag;
                    acc.last_ts = ts;
                }
                None
            }
            prev => {
                let emitted = prev
                    .filter(|acc| acc.window_start_s < start)
                    .map(|acc| Self::summarize(reading.sensor(), acc));
                self.open.insert(
                    reading.sensor(),
                    Accum {
                        window_start_s: start,
                        count: 1,
                        sum: mag,
                        min: mag,
                        max: mag,
                        last: mag,
                        last_ts: ts,
                    },
                );
                emitted
            }
        }
    }

    fn summarize(sensor: SensorId, acc: &Accum) -> WindowSummary {
        WindowSummary {
            sensor,
            window_start_s: acc.window_start_s,
            count: acc.count,
            min: acc.min,
            max: acc.max,
            mean: acc.sum / acc.count as f64,
            last: acc.last,
        }
    }

    /// Closes and emits every open window that started before `deadline_s`.
    pub fn close_windows_before(&mut self, deadline_s: u64) -> Vec<WindowSummary> {
        let mut out: Vec<WindowSummary> = Vec::new();
        self.open.retain(|sensor, acc| {
            if acc.window_start_s < deadline_s {
                out.push(Self::summarize(*sensor, acc));
                false
            } else {
                true
            }
        });
        out.sort_by_key(|s| (s.sensor, s.window_start_s));
        out
    }

    /// Number of currently open per-sensor windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{SensorType, Value};

    fn r(idx: u32, t: u64, v: f64) -> Reading {
        Reading::new(
            SensorId::new(SensorType::NoiseTrafficZone, idx),
            t,
            Value::from_f64(v),
        )
    }

    #[test]
    fn zero_window_rejected() {
        assert_eq!(WindowCombiner::new(0).unwrap_err(), Error::EmptyWindow);
    }

    #[test]
    fn summary_moments_are_exact() {
        let mut w = WindowCombiner::new(100).unwrap();
        for (t, v) in [(0, 10.0), (10, 20.0), (20, 30.0), (30, 40.0)] {
            assert!(w.offer(&r(0, t, v)).is_none());
        }
        let s = w.close_windows_before(100).remove(0);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 40.0);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.last, 40.0);
    }

    #[test]
    fn tumbling_emits_previous_window() {
        let mut w = WindowCombiner::new(60).unwrap();
        w.offer(&r(0, 10, 1.0));
        w.offer(&r(0, 50, 3.0));
        // A reading in the next window tumbles the old one out.
        let emitted = w.offer(&r(0, 70, 9.0)).expect("previous window emitted");
        assert_eq!(emitted.window_start_s, 0);
        assert_eq!(emitted.count, 2);
        assert_eq!(emitted.mean, 2.0);
        assert_eq!(w.open_windows(), 1);
    }

    #[test]
    fn sensors_are_windowed_independently() {
        let mut w = WindowCombiner::new(60).unwrap();
        w.offer(&r(0, 0, 1.0));
        w.offer(&r(1, 0, 2.0));
        w.offer(&r(2, 61, 3.0));
        let out = w.close_windows_before(1_000);
        assert_eq!(out.len(), 3);
        // Sorted by sensor then window.
        assert_eq!(out[0].sensor.index(), 0);
        assert_eq!(out[1].sensor.index(), 1);
        assert_eq!(out[2].sensor.index(), 2);
    }

    #[test]
    fn close_respects_deadline() {
        let mut w = WindowCombiner::new(60).unwrap();
        w.offer(&r(0, 0, 1.0)); // window [0, 60)
        w.offer(&r(1, 120, 1.0)); // window [120, 180)
        let out = w.close_windows_before(60);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sensor.index(), 0);
        assert_eq!(w.open_windows(), 1);
    }

    #[test]
    fn last_tracks_latest_timestamp_not_offer_order() {
        let mut w = WindowCombiner::new(100).unwrap();
        w.offer(&r(0, 50, 5.0));
        w.offer(&r(0, 10, 1.0)); // late-arriving older reading
        let s = w.close_windows_before(100).remove(0);
        assert_eq!(s.last, 5.0);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn combination_reduces_message_count() {
        // 60 readings/hour -> 1 summary/hour: the volume argument of §IV.D.
        let mut w = WindowCombiner::new(3600).unwrap();
        let mut emitted = 0;
        for t in 0..240u64 {
            if w.offer(&r(0, t * 60, t as f64)).is_some() {
                emitted += 1;
            }
        }
        emitted += w.close_windows_before(u64::MAX).len();
        assert_eq!(emitted, 4); // 4 hours -> 4 summaries
    }
}
