//! Distributed aggregation protocols — the *communication* taxonomy of
//! §V.A: structured (hierarchical trees, as the F2C architecture itself
//! uses), and unstructured (gossip, flooding) alternatives the survey \[20\]
//! catalogues.
//!
//! These run as synchronous-round simulations over explicit adjacency
//! structures, so tests can assert convergence behaviour deterministically.

mod flood;
mod gossip;
mod tree;

pub use flood::{flood_max, FloodOutcome};
pub use gossip::{push_sum, GossipOutcome};
pub use tree::AggregationTree;
