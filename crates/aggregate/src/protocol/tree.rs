//! Hierarchic (tree-structured) aggregation — the protocol class the F2C
//! architecture instantiates: fog-1 → fog-2 → cloud.

use crate::functions::Decomposable;
use crate::{Error, Result};

/// A rooted aggregation tree over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::protocol::AggregationTree;
/// use f2c_aggregate::functions::{fold, SumCount};
///
/// // A 2-level hierarchy: root 0, children 1 and 2, leaves 3..=6.
/// let parents = [None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)];
/// let tree = AggregationTree::from_parents(&parents)?;
/// let locals: Vec<SumCount> = (0..7).map(|i| fold([i as f64])).collect();
/// let root = tree.aggregate(&locals);
/// assert_eq!(root.sum, 21.0);
/// assert_eq!(tree.message_count(), 6); // n - 1 partial states travel
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregationTree {
    children: Vec<Vec<usize>>,
    /// Nodes in bottom-up (reverse topological) order.
    bottom_up: Vec<usize>,
    root: usize,
}

impl AggregationTree {
    /// Builds a tree from parent pointers (`None` marks the single root).
    ///
    /// # Errors
    ///
    /// [`Error::NoParticipants`] for an empty slice or a malformed forest
    /// (zero or multiple roots, cycles, out-of-range parents).
    pub fn from_parents(parents: &[Option<usize>]) -> Result<Self> {
        let n = parents.len();
        if n == 0 {
            return Err(Error::NoParticipants);
        }
        let mut root = None;
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            match p {
                None => {
                    if root.replace(i).is_some() {
                        return Err(Error::NoParticipants); // two roots
                    }
                }
                Some(parent) => {
                    if *parent >= n || *parent == i {
                        return Err(Error::NoParticipants);
                    }
                    children[*parent].push(i);
                }
            }
        }
        let root = root.ok_or(Error::NoParticipants)?;
        // BFS from the root; a cycle leaves nodes unvisited.
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = vec![false; n];
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in &children[u] {
                if seen[c] {
                    return Err(Error::NoParticipants);
                }
                seen[c] = true;
                queue.push_back(c);
            }
        }
        if order.len() != n {
            return Err(Error::NoParticipants); // disconnected / cyclic
        }
        order.reverse();
        Ok(Self {
            children,
            bottom_up: order,
            root,
        })
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the tree is empty (never true for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Children of a node.
    pub fn children_of(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Number of partial-state messages one aggregation sends (`n - 1`).
    pub fn message_count(&self) -> usize {
        self.len() - 1
    }

    /// Merges per-node local states bottom-up and returns the root state.
    ///
    /// # Panics
    ///
    /// Panics if `locals.len() != self.len()`.
    pub fn aggregate<S: Decomposable>(&self, locals: &[S]) -> S {
        assert_eq!(locals.len(), self.len(), "one local state per node");
        let mut acc: Vec<S> = locals.to_vec();
        for &node in &self.bottom_up {
            // Clone child states out to appease the borrow checker; states
            // are small by design (they cross the network in the real system).
            let child_states: Vec<S> = self.children[node]
                .iter()
                .map(|&c| acc[c].clone())
                .collect();
            for cs in &child_states {
                acc[node].merge(cs);
            }
        }
        acc[self.root].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{fold, Moments, SumCount};

    fn f2c_like_tree() -> AggregationTree {
        // root cloud (0); 3 districts (1,2,3); 2 sections per district.
        let parents = [
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(2),
            Some(2),
            Some(3),
            Some(3),
        ];
        AggregationTree::from_parents(&parents).unwrap()
    }

    #[test]
    fn aggregate_equals_flat_fold() {
        let tree = f2c_like_tree();
        let values: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let locals: Vec<Moments> = values.iter().map(|&v| fold([v])).collect();
        let root = tree.aggregate(&locals);
        let flat: Moments = fold(values.iter().copied());
        assert_eq!(root.count, flat.count);
        assert!((root.mean().unwrap() - flat.mean().unwrap()).abs() < 1e-12);
        assert!((root.variance().unwrap() - flat.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn message_count_is_n_minus_1() {
        assert_eq!(f2c_like_tree().message_count(), 9);
    }

    #[test]
    fn single_node_tree() {
        let tree = AggregationTree::from_parents(&[None]).unwrap();
        let root: SumCount = tree.aggregate(&[fold([42.0])]);
        assert_eq!(root.sum, 42.0);
        assert_eq!(tree.message_count(), 0);
    }

    #[test]
    fn malformed_trees_rejected() {
        // No root.
        assert!(AggregationTree::from_parents(&[Some(1), Some(0)]).is_err());
        // Two roots.
        assert!(AggregationTree::from_parents(&[None, None]).is_err());
        // Self-parent.
        assert!(AggregationTree::from_parents(&[None, Some(1)]).is_err());
        // Out-of-range parent.
        assert!(AggregationTree::from_parents(&[None, Some(9)]).is_err());
        // Empty.
        assert!(AggregationTree::from_parents(&[]).is_err());
    }

    #[test]
    fn deep_chain_aggregates() {
        // A 1000-node chain: stack-safe because traversal is iterative.
        let parents: Vec<Option<usize>> = (0..1000)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let tree = AggregationTree::from_parents(&parents).unwrap();
        let locals: Vec<SumCount> = (0..1000).map(|_| fold([1.0])).collect();
        assert_eq!(tree.aggregate(&locals).count, 1000);
    }

    #[test]
    fn children_accessor_matches_structure() {
        let tree = f2c_like_tree();
        assert_eq!(tree.children_of(0), &[1, 2, 3]);
        assert_eq!(tree.children_of(1), &[4, 5]);
        assert!(tree.children_of(9).is_empty());
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.len(), 10);
    }
}
