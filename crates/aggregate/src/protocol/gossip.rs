//! Push-sum gossip averaging (Kempe et al.) — the unstructured
//! "averaging" class of the survey's communication taxonomy.
//!
//! Every node keeps a `(sum, weight)` pair; each synchronous round it sends
//! half of both to one uniformly random neighbor and keeps the other half.
//! Every node's `sum/weight` converges exponentially to the global mean —
//! without any hierarchy, at the price of many more messages than the tree
//! protocol (one per node per round vs `n - 1` total).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Error, Result};

/// Result of a push-sum run.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipOutcome {
    /// Per-node estimates of the mean after the final round.
    pub estimates: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages sent (n per round).
    pub messages: u64,
    /// Largest |estimate − true mean| across nodes.
    pub max_error: f64,
}

/// Runs synchronous push-sum over `neighbors` (adjacency lists; pass each
/// node's full peer set for a complete graph).
///
/// # Errors
///
/// * [`Error::NoParticipants`] if `values` is empty or some node has no
///   neighbors,
/// * [`Error::ZeroRounds`] if `rounds` is zero.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::protocol::push_sum;
///
/// let values = [10.0, 20.0, 30.0, 40.0];
/// // Complete graph on 4 nodes.
/// let neighbors: Vec<Vec<usize>> = (0..4)
///     .map(|i| (0..4).filter(|&j| j != i).collect())
///     .collect();
/// let out = push_sum(&values, &neighbors, 60, 7)?;
/// assert!(out.max_error < 1e-6); // everyone knows the mean is 25
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
pub fn push_sum(
    values: &[f64],
    neighbors: &[Vec<usize>],
    rounds: usize,
    seed: u64,
) -> Result<GossipOutcome> {
    let n = values.len();
    if n == 0 || neighbors.len() != n || neighbors.iter().any(Vec::is_empty) {
        return Err(Error::NoParticipants);
    }
    if rounds == 0 {
        return Err(Error::ZeroRounds);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sum: Vec<f64> = values.to_vec();
    let mut weight = vec![1.0f64; n];
    let mut messages = 0u64;

    for _ in 0..rounds {
        let mut inbox_sum = vec![0.0f64; n];
        let mut inbox_weight = vec![0.0f64; n];
        for i in 0..n {
            let peer = neighbors[i][rng.gen_range(0..neighbors[i].len())];
            let half_s = sum[i] / 2.0;
            let half_w = weight[i] / 2.0;
            sum[i] = half_s;
            weight[i] = half_w;
            inbox_sum[peer] += half_s;
            inbox_weight[peer] += half_w;
            messages += 1;
        }
        for i in 0..n {
            sum[i] += inbox_sum[i];
            weight[i] += inbox_weight[i];
        }
    }

    let estimates: Vec<f64> = sum
        .iter()
        .zip(&weight)
        .map(|(s, w)| if *w > 0.0 { s / w } else { 0.0 })
        .collect();
    let true_mean = values.iter().sum::<f64>() / n as f64;
    let max_error = estimates
        .iter()
        .map(|e| (e - true_mean).abs())
        .fold(0.0, f64::max);
    Ok(GossipOutcome {
        estimates,
        rounds,
        messages,
        max_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect()
    }

    fn ring(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn converges_on_complete_graph() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let out = push_sum(&values, &complete(50), 80, 3).unwrap();
        assert!(out.max_error < 1e-6, "max error {}", out.max_error);
    }

    #[test]
    fn converges_slower_on_ring() {
        let values: Vec<f64> = (0..32).map(|i| (i % 4) as f64 * 10.0).collect();
        let few = push_sum(&values, &ring(32), 10, 3).unwrap();
        let many = push_sum(&values, &ring(32), 1500, 3).unwrap();
        assert!(many.max_error < few.max_error);
        // Rings mix in O(n^2) rounds — far slower than complete graphs.
        assert!(many.max_error < 1e-3, "ring still off: {}", many.max_error);
    }

    #[test]
    fn mass_is_conserved() {
        // Sum of (sum) components equals total at all times; probe at end:
        // each node's estimate weighted by its weight reconstructs the sum.
        let values = [5.0, 15.0, 25.0];
        let out = push_sum(&values, &complete(3), 25, 1).unwrap();
        // The weighted estimates must average exactly to the true mean.
        // (push-sum invariant: Σ sums = Σ values, Σ weights = n)
        let mean = values.iter().sum::<f64>() / 3.0;
        for e in &out.estimates {
            assert!((e - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn message_count_is_n_per_round() {
        let values = [1.0; 10];
        let out = push_sum(&values, &complete(10), 7, 0).unwrap();
        assert_eq!(out.messages, 70);
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn deterministic_per_seed() {
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let a = push_sum(&values, &ring(20), 50, 9).unwrap();
        let b = push_sum(&values, &ring(20), 50, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tree_beats_gossip_on_message_count() {
        // The structured/unstructured trade-off the survey describes.
        let n = 83; // 73 fog-1 + 10 fog-2, roughly the Barcelona graph
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = push_sum(&values, &complete(n), 60, 5).unwrap();
        assert!(out.max_error < 1e-6);
        assert!(out.messages as usize > 10 * (n - 1));
    }

    #[test]
    fn error_inputs() {
        assert!(push_sum(&[], &[], 10, 0).is_err());
        assert!(push_sum(&[1.0], &[vec![]], 10, 0).is_err());
        assert!(push_sum(&[1.0, 2.0], &complete(2), 0, 0).is_err());
    }
}
