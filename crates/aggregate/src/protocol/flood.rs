//! Flooding aggregation — the "flooding/broadcast" class of the survey's
//! communication taxonomy. Every round, every node exchanges its current
//! aggregate with all neighbors; idempotent aggregates (max/min) converge
//! in diameter rounds, at a message cost of `2·|E|` per round.

use crate::{Error, Result};

/// Result of a flooding run.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodOutcome {
    /// Per-node aggregate after the final round.
    pub values: Vec<f64>,
    /// Rounds until every node held the global answer (or `rounds` if it
    /// never converged within the budget).
    pub rounds_to_convergence: usize,
    /// Total messages sent.
    pub messages: u64,
    /// Whether all nodes converged to the global maximum.
    pub converged: bool,
}

/// Floods the maximum of `values` over `neighbors` for at most `max_rounds`
/// synchronous rounds.
///
/// # Errors
///
/// [`Error::NoParticipants`] / [`Error::ZeroRounds`] on degenerate input.
///
/// # Examples
///
/// ```
/// use f2c_aggregate::protocol::flood_max;
///
/// // A path graph 0-1-2-3: diameter 3.
/// let neighbors = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
/// let out = flood_max(&[5.0, 1.0, 9.0, 2.0], &neighbors, 10)?;
/// assert!(out.converged);
/// assert_eq!(out.rounds_to_convergence, 2); // 9 reaches nodes 0 and 3 in 2 hops
/// assert!(out.values.iter().all(|&v| v == 9.0));
/// # Ok::<(), f2c_aggregate::Error>(())
/// ```
pub fn flood_max(
    values: &[f64],
    neighbors: &[Vec<usize>],
    max_rounds: usize,
) -> Result<FloodOutcome> {
    let n = values.len();
    if n == 0 || neighbors.len() != n {
        return Err(Error::NoParticipants);
    }
    if max_rounds == 0 {
        return Err(Error::ZeroRounds);
    }
    let global_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut state: Vec<f64> = values.to_vec();
    let mut messages = 0u64;
    let mut rounds_to_convergence = max_rounds;
    let mut converged = state.iter().all(|&v| v == global_max);
    if converged {
        rounds_to_convergence = 0;
    }
    for round in 1..=max_rounds {
        if converged {
            break;
        }
        let snapshot = state.clone();
        for (i, peers) in neighbors.iter().enumerate() {
            for &p in peers {
                // i sends its value to p.
                if snapshot[i] > state[p] {
                    state[p] = snapshot[i];
                }
                messages += 1;
            }
        }
        if !converged && state.iter().all(|&v| v == global_max) {
            converged = true;
            rounds_to_convergence = round;
        }
    }
    Ok(FloodOutcome {
        values: state,
        rounds_to_convergence,
        messages,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn converges_in_eccentricity_rounds_on_a_path() {
        // Max at one end of a 10-path: needs 9 rounds to reach the far end.
        let mut values = vec![0.0; 10];
        values[0] = 100.0;
        let out = flood_max(&values, &path(10), 20).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds_to_convergence, 9);
    }

    #[test]
    fn insufficient_budget_reports_non_convergence() {
        let mut values = vec![0.0; 10];
        values[0] = 100.0;
        let out = flood_max(&values, &path(10), 3).unwrap();
        assert!(!out.converged);
        assert!(out.values[9] < 100.0);
    }

    #[test]
    fn already_uniform_converges_instantly() {
        let out = flood_max(&[7.0; 5], &path(5), 10).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds_to_convergence, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn message_cost_is_degree_sum_per_round() {
        // 4-path has degree sum 6; two rounds to converge from the middle.
        let out = flood_max(&[0.0, 9.0, 0.0, 0.0], &path(4), 10).unwrap();
        assert!(out.converged);
        // messages = rounds_run * 6 (it stops checking after convergence).
        assert_eq!(out.messages % 6, 0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(flood_max(&[], &[], 5).is_err());
        assert!(flood_max(&[1.0], &[vec![]], 0).is_err());
        assert!(flood_max(&[1.0, 2.0], &[vec![1]], 5).is_err()); // adjacency size mismatch
    }

    #[test]
    fn disconnected_graph_never_converges() {
        let neighbors = vec![vec![], vec![]];
        let out = flood_max(&[1.0, 5.0], &neighbors, 8).unwrap();
        assert!(!out.converged);
        assert_eq!(out.values, vec![1.0, 5.0]);
    }
}
