//! Property-based tests on the aggregation library's mathematical
//! invariants: sketch error bounds, decomposability laws, protocol
//! conservation.

use f2c_aggregate::functions::{fold, Decomposable, MinMax, Moments, SumCount};
use f2c_aggregate::protocol::{flood_max, push_sum, AggregationTree};
use f2c_aggregate::sketch::{CountMinSketch, HyperLogLog, QDigest};
use f2c_aggregate::{delta, RedundancyFilter};
use proptest::prelude::*;
use scc_sensors::{Reading, SensorId, SensorType, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn countmin_never_underestimates(
        keys in proptest::collection::vec(0u32..500, 1..2000),
        width in 16usize..512,
        depth in 1usize..6,
    ) {
        let mut cm = CountMinSketch::new(width, depth).unwrap();
        let mut truth = std::collections::HashMap::new();
        for k in &keys {
            cm.add(&k.to_le_bytes());
            *truth.entry(*k).or_insert(0u64) += 1;
        }
        for (k, count) in truth {
            prop_assert!(cm.estimate(&k.to_le_bytes()) >= count);
        }
        prop_assert_eq!(cm.items(), keys.len() as u64);
    }

    #[test]
    fn countmin_merge_commutes(
        a_keys in proptest::collection::vec(0u32..100, 0..300),
        b_keys in proptest::collection::vec(0u32..100, 0..300),
    ) {
        let build = |keys: &[u32]| {
            let mut cm = CountMinSketch::new(64, 3).unwrap();
            for k in keys { cm.add(&k.to_le_bytes()); }
            cm
        };
        let mut ab = build(&a_keys);
        ab.merge(&build(&b_keys));
        let mut ba = build(&b_keys);
        ba.merge(&build(&a_keys));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hll_merge_is_idempotent_and_commutative(
        keys in proptest::collection::vec(any::<u32>(), 0..2000),
    ) {
        let mut a = HyperLogLog::new(10).unwrap();
        for k in &keys { a.add(&k.to_le_bytes()); }
        let mut twice = a.clone();
        twice.merge(&a);
        prop_assert_eq!(&twice, &a, "merge with self must be identity");
    }

    #[test]
    fn qdigest_quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1024, 1..500),
    ) {
        let mut d = QDigest::new(1024, 16).unwrap();
        for &v in &values { d.add(v); }
        let mut prev = 0u64;
        for i in 0..=10 {
            let q = d.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
        prop_assert!(prev <= 1023);
    }

    #[test]
    fn qdigest_count_is_exact_under_compression(
        values in proptest::collection::vec(0u64..256, 0..3000),
    ) {
        let mut d = QDigest::new(256, 4).unwrap(); // aggressive compression
        for &v in &values { d.add(v); }
        prop_assert_eq!(d.count(), values.len() as u64);
    }

    #[test]
    fn decomposable_types_obey_merge_associativity(
        xs in proptest::collection::vec(-1e5f64..1e5, 0..60),
        ys in proptest::collection::vec(-1e5f64..1e5, 0..60),
        zs in proptest::collection::vec(-1e5f64..1e5, 0..60),
    ) {
        fn assoc<S: Decomposable + PartialEq + std::fmt::Debug>(
            xs: &[f64], ys: &[f64], zs: &[f64],
        ) -> (S, S) {
            let (x, y, z): (S, S, S) = (
                fold(xs.iter().copied()),
                fold(ys.iter().copied()),
                fold(zs.iter().copied()),
            );
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            let mut yz = y;
            yz.merge(&z);
            let mut right = x;
            right.merge(&yz);
            (left, right)
        }
        let (l, r) = assoc::<SumCount>(&xs, &ys, &zs);
        prop_assert_eq!(l.count, r.count);
        prop_assert!((l.sum - r.sum).abs() <= 1e-6 * l.sum.abs().max(1.0));
        let (l, r) = assoc::<MinMax>(&xs, &ys, &zs);
        prop_assert_eq!(l, r);
        let (l, r) = assoc::<Moments>(&xs, &ys, &zs);
        prop_assert_eq!(l.count, r.count);
    }

    #[test]
    fn tree_aggregation_is_population_exact(
        sizes in proptest::collection::vec(1usize..5, 1..20),
    ) {
        // A 2-level tree: root + one child per entry, child i has a local
        // count of sizes[i].
        let n = sizes.len() + 1;
        let parents: Vec<Option<usize>> =
            std::iter::once(None).chain((1..n).map(|_| Some(0))).collect();
        let tree = AggregationTree::from_parents(&parents).unwrap();
        let locals: Vec<SumCount> = std::iter::once(SumCount::empty())
            .chain(sizes.iter().map(|&s| fold(vec![1.0; s])))
            .collect();
        let root = tree.aggregate(&locals);
        prop_assert_eq!(root.count, sizes.iter().map(|&s| s as u64).sum::<u64>());
    }

    #[test]
    fn push_sum_conserves_the_mean(
        values in proptest::collection::vec(-100.0f64..100.0, 2..30),
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let out = push_sum(&values, &neighbors, 100, seed).unwrap();
        let mean = values.iter().sum::<f64>() / n as f64;
        for e in &out.estimates {
            prop_assert!((e - mean).abs() < 1e-3, "estimate {e} vs mean {mean}");
        }
    }

    #[test]
    fn flood_max_never_invents_values(
        values in proptest::collection::vec(-1e6f64..1e6, 1..40),
    ) {
        let n = values.len();
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 { v.push(i - 1); }
                if i + 1 < n { v.push(i + 1); }
                v
            })
            .collect();
        let out = flood_max(&values, &neighbors, n + 2).unwrap();
        let true_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out.converged);
        for v in &out.values {
            prop_assert_eq!(*v, true_max);
        }
    }

    #[test]
    fn delta_varint_roundtrips(values in proptest::collection::vec(any::<i64>(), 0..500)) {
        let packed = delta::to_varint_bytes(&values);
        prop_assert_eq!(delta::from_varint_bytes(&packed).unwrap(), values);
    }

    #[test]
    fn dedup_output_has_no_consecutive_repeats_per_sensor(
        raw in proptest::collection::vec((0u32..5, 0i64..50), 0..400),
    ) {
        let mut filter = RedundancyFilter::new();
        let readings: Vec<Reading> = raw
            .iter()
            .enumerate()
            .map(|(t, (idx, v))| {
                Reading::new(
                    SensorId::new(SensorType::Temperature, *idx),
                    t as u64,
                    Value::Scalar(*v),
                )
            })
            .collect();
        let kept = filter.filter_batch(readings);
        // Invariant: per sensor, consecutive kept values always differ.
        let mut last: std::collections::HashMap<SensorId, Value> =
            std::collections::HashMap::new();
        for r in kept {
            if let Some(prev) = last.get(&r.sensor()) {
                prop_assert_ne!(prev, r.value());
            }
            last.insert(r.sensor(), r.value().clone());
        }
    }
}
