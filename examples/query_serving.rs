//! Consumer query serving over the hierarchy: warm a small Barcelona
//! deployment, then ask it the kinds of questions city services ask — a
//! live point read at the edge, a district dashboard aggregate, a
//! sibling-district analytics scan over the fog-2 metro ring, and a
//! city-wide scatter-gather aggregate — and finish with a seeded
//! closed-loop mini-workload.
//!
//! Run with `cargo run --release --example query_serving`.

use f2c_smartcity::core::runtime::populate_city;
use f2c_smartcity::core::{F2cCity, Layer};
use f2c_smartcity::query::workload::{self, ServiceClass, WorkloadConfig};
use f2c_smartcity::query::{
    EngineConfig, Outcome, Query, QueryAnswer, QueryEngine, QueryKind, Scope, Selector, TimeWindow,
};
use f2c_smartcity::sensors::{Category, SensorType};

fn show(label: &str, outcome: &Outcome) {
    match outcome {
        Outcome::Answered(resp) => {
            let summary = match &resp.answer {
                QueryAnswer::Point(Some(p)) => {
                    format!("latest value {:.2} at t={}s", p.value, p.created_s)
                }
                QueryAnswer::Point(None) => "no matching observation".to_owned(),
                QueryAnswer::Records(recs) => format!("{} records", recs.len()),
                QueryAnswer::Aggregate(a) => format!(
                    "count {} mean {:.2} from ~{} sensors",
                    a.count,
                    a.mean.unwrap_or(0.0),
                    a.distinct_sensors
                ),
            };
            println!(
                "{label:<28} {summary:<42} via {:?}, est {}",
                resp.via, resp.est_latency
            );
        }
        Outcome::Shed {
            layer,
            class,
            cause,
        } => println!("{label:<28} {class} shed at {layer} ({cause:?})"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One simulated hour of city data at 1/2000 population scale.
    let mut city = F2cCity::barcelona()?;
    let warm = populate_city(&mut city, 2_000, 42, 3_600, 900)?;
    println!(
        "warmed: {} readings -> {} records at the cloud\n",
        warm.offered,
        city.cloud().store().len()
    );

    let mut engine = QueryEngine::new(city, EngineConfig::default());
    engine.flush_all(3_600)?;
    let now = 3_700;
    // Scaled-down populations are hash-spread across all 73 sections, so
    // any consumer section works; the demo lives in section 3 (Ciutat
    // Vella, district 0).
    let origin = 3;
    let district = engine.city().district_of(origin);

    // A live read served by the consumer's own fog-1 node.
    let live = Query {
        origin,
        class: ServiceClass::RealTime,
        selector: Selector::Type(SensorType::ElectricityMeter),
        scope: Scope::Section(origin),
        window: TimeWindow::new(0, now),
        kind: QueryKind::Point,
    };
    show("live meter @ section 3", &engine.serve_sync(&live, now)?);

    // A district dashboard aggregate — fog 2 is the cheapest complete
    // source; repeating it hits the edge cache.
    let dashboard = Query {
        origin,
        class: ServiceClass::Dashboard,
        selector: Selector::Category(Category::Energy),
        scope: Scope::District(district),
        window: TimeWindow::new(0, 3_600),
        kind: QueryKind::Aggregate,
    };
    show(
        "energy dashboard (cold)",
        &engine.serve_sync(&dashboard, now)?,
    );
    show(
        "energy dashboard (repeat)",
        &engine.serve_sync(&dashboard, now + 1)?,
    );

    // Analytics over another district: the sibling fog-2 that provably
    // holds the window serves it over the metro ring — not the cloud.
    let analytics = Query {
        origin,
        class: ServiceClass::Analytics,
        selector: Selector::Category(Category::Energy),
        scope: Scope::District(district + 2),
        window: TimeWindow::new(0, 3_600),
        kind: QueryKind::Aggregate,
    };
    show(
        "energy analytics (far)",
        &engine.serve_sync(&analytics, now)?,
    );

    // A city-wide panel: no single fog node holds it, so the planner
    // fans out over the ten district fog-2 nodes, merges the partials at
    // the requester's fog-2, and beats the single-source cloud read.
    let citywide = Query {
        origin,
        class: ServiceClass::CityWide,
        selector: Selector::Category(Category::Urban),
        scope: Scope::City,
        window: TimeWindow::new(0, 3_600),
        kind: QueryKind::Aggregate,
    };
    show("urban city-wide panel", &engine.serve_sync(&citywide, now)?);

    // A seeded closed-loop mini-workload over the same engine.
    let report = workload::run(
        &mut engine,
        &WorkloadConfig {
            seed: 42,
            requests: 5_000,
            users: 48,
            start_s: now,
            ..WorkloadConfig::default()
        },
    )?;
    println!(
        "\nworkload: {} requests -> {} answered ({:.0}% cache hits), \
         {} shed, {} unanswerable",
        report.issued,
        report.answered,
        report.cache_hit_rate() * 100.0,
        report.shed,
        report.unanswerable
    );
    for layer in Layer::ALL {
        let h = report.layer_hist(layer);
        if h.count() > 0 {
            println!(
                "  {layer:<12} {:>6} served, p50 {}, p99 {}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
    }
    // Per-class QoS: shed rates and deadline-budget attainment.
    for class in ServiceClass::ALL {
        let stats = report.class_stats(class);
        if stats.requests > 0 {
            println!(
                "  {class:<12} {:>6} issued, shed rate {:.1}%, SLO attainment {:.1}%",
                stats.requests,
                stats.shed_rate() * 100.0,
                stats.slo_attainment() * 100.0
            );
        }
    }
    Ok(())
}
