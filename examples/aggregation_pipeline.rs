//! The aggregation menu of §V.A end to end: redundant-data elimination,
//! window combination, decomposable partial aggregation up a tree (the F2C
//! hierarchy itself), gossip as the unstructured alternative, sketches for
//! counting — and the byte bill for each choice.
//!
//! Run with `cargo run --example aggregation_pipeline`.

use f2c_smartcity::aggregate::functions::{fold, Decomposable, Moments};
use f2c_smartcity::aggregate::protocol::{push_sum, AggregationTree};
use f2c_smartcity::aggregate::sketch::{CountMinSketch, HyperLogLog};
use f2c_smartcity::aggregate::{AggregationPlan, RedundancyFilter, Stage, WindowCombiner};
use f2c_smartcity::compress;
use f2c_smartcity::sensors::{wire, ReadingGenerator, SensorType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A day of garbage-container levels from one fog node's 200 sensors.
    let mut gen = ReadingGenerator::for_population(SensorType::ContainerOrganic, 200, 11);
    let waves: Vec<_> = (0..36u64).map(|w| gen.wave(w * 2400)).collect();
    let raw_count: usize = waves.iter().map(Vec::len).sum();

    // 1. Dedup + hourly windows, composed as a fog-1 plan.
    let mut plan = AggregationPlan::new(vec![
        Stage::Dedup(RedundancyFilter::new()),
        Stage::Window(WindowCombiner::new(3600)?),
    ]);
    let mut shipped = Vec::new();
    for wave in waves.clone() {
        shipped.extend(plan.apply(wave));
    }
    shipped.extend(plan.finish()?);
    println!(
        "plan [dedup -> hourly windows]: {} readings in, {} out ({:.0}% reduction)",
        raw_count,
        shipped.len(),
        plan.report().reduction() * 100.0
    );

    // 2. Compression on top (what actually crosses the uplink).
    let all_readings: Vec<_> = waves.into_iter().flatten().collect();
    let encoded = wire::encode_batch(&all_readings);
    let packed = compress::compress(&encoded)?;
    println!(
        "compression: {} B of observations -> {} B ({:.0}% reduction, paper: 78%)",
        encoded.len(),
        packed.len(),
        (1.0 - packed.len() as f64 / encoded.len() as f64) * 100.0
    );

    // 3. Decomposable aggregation up the hierarchy: fill-level moments per
    //    section merge at the district, then the cloud — identical to the
    //    flat computation.
    let magnitudes: Vec<f64> = all_readings.iter().map(|r| r.value().magnitude()).collect();
    let flat: Moments = fold(magnitudes.iter().copied());
    // 1 cloud + 2 districts + 4 sections.
    let parents = [None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)];
    let tree = AggregationTree::from_parents(&parents)?;
    let mut locals = vec![Moments::empty(); 7];
    for (i, chunk) in magnitudes.chunks(magnitudes.len() / 4 + 1).enumerate() {
        locals[3 + i.min(3)] = fold(chunk.iter().copied());
    }
    let root = tree.aggregate(&locals);
    println!(
        "hierarchic mean fill {:.1}% (flat {:.1}%) with {} partial-state messages",
        root.mean().unwrap_or(0.0),
        flat.mean().unwrap_or(0.0),
        tree.message_count()
    );

    // 4. The unstructured alternative: push-sum gossip over all 73 fog-1
    //    nodes costs orders of magnitude more messages for the same mean.
    let values: Vec<f64> = (0..73).map(|i| 40.0 + (i % 7) as f64).collect();
    let neighbors: Vec<Vec<usize>> = (0..73)
        .map(|i| (0..73).filter(|&j| j != i).collect())
        .collect();
    let gossip = push_sum(&values, &neighbors, 40, 3)?;
    println!(
        "gossip mean after {} rounds: max error {:.2e}, {} messages (tree: 72)",
        gossip.rounds, gossip.max_error, gossip.messages
    );

    // 5. Counting sketches: distinct sensors and per-sensor frequencies in
    //    constant memory at the fog node.
    let mut hll = HyperLogLog::new(12)?;
    let mut cm = CountMinSketch::new(2048, 4)?;
    for r in &all_readings {
        let key = r.sensor().to_string();
        hll.add(key.as_bytes());
        cm.add(key.as_bytes());
    }
    println!(
        "sketches: ~{} distinct sensors (true 200); sensor #0 reported ~{} times (true 36)",
        hll.estimate(),
        cm.estimate(all_readings[0].sensor().to_string().as_bytes())
    );
    Ok(())
}
