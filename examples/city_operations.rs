//! City operations day: the assembled `F2cCity` ingesting fixed sensors
//! *and* participatory smartphone data, serving a placed service through
//! the §IV.C cost model, and closing the life cycle with policy-driven
//! data removal.
//!
//! Run with `cargo run --release --example city_operations`.

use f2c_smartcity::citysim::barcelona::LatencyProfile;
use f2c_smartcity::citysim::time::Duration;
use f2c_smartcity::core::placement::ServiceSpec;
use f2c_smartcity::core::service::CityService;
use f2c_smartcity::core::F2cCity;
use f2c_smartcity::dlc::preservation::{purge_expired, RemovalPolicy};
use f2c_smartcity::sensors::sources::{ParticipatorySource, ThirdPartyFeed};
use f2c_smartcity::sensors::{ReadingGenerator, SensorType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut city = F2cCity::barcelona()?;

    // Fixed infrastructure: traffic sensors in three sections.
    let mut traffic: Vec<ReadingGenerator> = (0..3)
        .map(|i| ReadingGenerator::for_population(SensorType::Traffic, 20, i))
        .collect();
    // Citizens: 300 smartphones contributing noise readings while moving.
    let mut phones = ParticipatorySource::new(300, 73, 42);
    // A third-party weather API, polled at the cloud (tiny volumes).
    let mut feed = ThirdPartyFeed::new(SensorType::Weather, 10, 7);

    let mut ingested = 0u64;
    for round in 0..12u64 {
        let t = round * 300;
        for (i, gen) in traffic.iter_mut().enumerate() {
            ingested += city.ingest(i * 20, gen.wave(t), t + 1)?.stored;
        }
        let mut per_section: Vec<Vec<_>> = (0..73).map(|_| Vec::new()).collect();
        for (section, reading) in phones.tick(t) {
            per_section[section as usize].push(reading);
        }
        for (section, readings) in per_section.into_iter().enumerate() {
            if !readings.is_empty() {
                ingested += city.ingest(section, readings, t + 1)?.stored;
            }
        }
        let _ = feed.poll(t); // collected at cloud level in the paper
    }
    println!("ingested {ingested} records across 73 fog-1 nodes (after dedup)");

    let (fog1_b, fog2_b) = city.flush_all(3_600)?;
    println!("flushed upward: fog1->fog2 {fog1_b} B, fog2->cloud {fog2_b} B (accounting)");
    println!(
        "cloud archive now holds {} records",
        city.cloud().store().len()
    );

    // A latency-critical congestion service, placed at fog layer 1.
    let mut svc = CityService::place(
        "congestion-control",
        ServiceSpec::realtime_critical(Duration::from_millis(25)),
        &LatencyProfile::default(),
        Duration::from_millis(2),
    )?;
    println!("\n'{}' placed at {}", svc.name(), svc.layer());
    for section in [0usize, 20, 40] {
        let out = svc.execute(&mut city, section, SensorType::Traffic, 0, 10_000, 3_600)?;
        println!(
            "  section {section:>2}: {} records via {:?} in {} (deadline {})",
            out.records_read,
            out.source,
            out.latency,
            if out.deadline_met { "met" } else { "MISSED" }
        );
    }
    println!(
        "service latency: p50 {} / max {} over {} requests",
        svc.latencies().quantile(0.5),
        svc.latencies().max(),
        svc.request_count()
    );

    // End of life: a retention audit three years out.
    let mut snapshot = city.cloud().store().archive().clone();
    let report = purge_expired(
        &mut snapshot,
        &RemovalPolicy::paper_default(),
        3 * 365 * 86_400,
    );
    println!(
        "\nremoval audit (3 years out): {} of {} records would be destroyed ({:?})",
        report.removed, report.examined, report.per_category
    );
    Ok(())
}
