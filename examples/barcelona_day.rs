//! One simulated day of the future Barcelona deployment (Table I workload)
//! at 1/1000 population scale: 73 fog-1 nodes, 10 fog-2 nodes, one cloud.
//! Prints the measured traffic against the paper's analytic predictions.
//!
//! Run with `cargo run --release --example barcelona_day`.

use f2c_smartcity::core::report::gb;
use f2c_smartcity::core::runtime::{simulate, SimConfig};
use f2c_smartcity::core::traffic::TrafficModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("simulating one day of Barcelona at 1/1000 scale…\n");
    let report = simulate(SimConfig::paper_scaled())?;
    let model = TrafficModel::paper();
    let totals = model.table1_totals();

    println!("{:<34} {:>12} {:>12}", "", "simulated*", "Table I");
    println!("{}", "-".repeat(62));
    println!(
        "{:<34} {:>12} {:>12}",
        "raw generation (fog-1 ingress)",
        gb(report.scaled_up(report.raw_acct_bytes)),
        gb(totals.daily_fog1)
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "fog1 -> fog2 (after dedup)",
        gb(report.scaled_up(report.fog1_uplink_acct_bytes)),
        gb(totals.daily_fog2)
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "fog2 -> cloud",
        gb(report.scaled_up(report.fog2_uplink_acct_bytes)),
        gb(totals.daily_cloud_f2c)
    );
    println!("  (* scaled back up by the population factor)");

    println!(
        "\n{} readings simulated | dedup rate {:.1}% | {} records preserved at the cloud",
        report.generated_readings,
        report.dedup_rate() * 100.0,
        report.cloud_records
    );
    println!(
        "metered network bytes: fog1->fog2 {}, fog2->cloud {}",
        gb(report.scaled_up(report.network_fog1_fog2_bytes)),
        gb(report.scaled_up(report.network_fog2_cloud_bytes))
    );
    Ok(())
}
