//! A latency-critical service from the paper's motivation: real-time noise
//! monitoring with anomaly alerts. Shows (a) the placement engine putting
//! the service at fog layer 1, (b) the analysis phase flagging a noise
//! spike, and (c) why the same service could not meet its deadline from a
//! centralized cloud.
//!
//! Run with `cargo run --example realtime_monitoring`.

use f2c_smartcity::citysim::barcelona::{BarcelonaTopology, LatencyProfile};
use f2c_smartcity::citysim::time::Duration;
use f2c_smartcity::core::placement::{PlacementEngine, ServiceSpec};
use f2c_smartcity::core::request::AccessSimulator;
use f2c_smartcity::dlc::phase::{Phase, PhaseContext};
use f2c_smartcity::dlc::processing::AnalysisPhase;
use f2c_smartcity::dlc::DataRecord;
use f2c_smartcity::sensors::{Reading, ReadingGenerator, SensorId, SensorType, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (a) Place the service: 10 ms deadline on section-local real-time data.
    let engine = PlacementEngine::new(LatencyProfile::default());
    let spec = ServiceSpec::realtime_critical(Duration::from_millis(10));
    let placement = engine.place(&spec)?;
    println!(
        "noise-alert service placed at {} (access latency {})",
        placement.layer, placement.access_latency
    );

    // (b) Run the analysis phase over a noise stream with an injected spike.
    let mut analysis = AnalysisPhase::new(3.0);
    let mut gen = ReadingGenerator::for_population(SensorType::NoiseTrafficZone, 30, 9);
    for wave in 0..120u64 {
        let records: Vec<DataRecord> = gen
            .wave(wave * 60)
            .into_iter()
            .map(DataRecord::from_reading)
            .collect();
        analysis.run(records, &PhaseContext::at(wave * 60));
    }
    // A 130 dB event (way outside the walk's band).
    let spike = Reading::new(
        SensorId::new(SensorType::NoiseTrafficZone, 7),
        7_300,
        Value::from_f64(130.0),
    );
    analysis.run(
        vec![DataRecord::from_reading(spike)],
        &PhaseContext::at(7_300),
    );
    let summary = analysis.summary();
    println!(
        "analyzed {} readings; {} anomal{} detected",
        summary.per_type[&SensorType::NoiseTrafficZone].count,
        summary.anomalies.len(),
        if summary.anomalies.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    for a in &summary.anomalies {
        println!(
            "  ALERT {} at t={}s: {:.1} dB (z = {:.1})",
            a.sensor, a.timestamp_s, a.value, a.z
        );
    }

    // (c) The deadline argument: fog vs centralized access latency.
    let mut sim = AccessSimulator::new(BarcelonaTopology::build(&LatencyProfile::default()));
    let fog = sim.realtime_read_f2c(12, 1_000);
    let cloud = sim.realtime_read_centralized(12, 1_000)?;
    println!(
        "\nreal-time read: {} at fog-1 vs {} centralized -> only {} meets the 10 ms deadline",
        fog.latency, cloud.latency, placement.layer
    );
    Ok(())
}
