//! Service placement across the F2C hierarchy (§IV.C): a catalog of city
//! services is placed at the lowest feasible layer, and missing data is
//! fetched from the cheapest source (neighbor fog node vs parent).
//!
//! Run with `cargo run --example service_placement`.

use f2c_smartcity::citysim::barcelona::LatencyProfile;
use f2c_smartcity::citysim::time::Duration;
use f2c_smartcity::core::cost::{AccessCostModel, AccessOption};
use f2c_smartcity::core::placement::{AreaSpan, PlacementEngine, ServiceSpec};
use f2c_smartcity::dlc::AgeClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = LatencyProfile::default();
    let engine = PlacementEngine::new(profile);

    let services: Vec<(&str, ServiceSpec)> = vec![
        (
            "traffic light adaptation",
            ServiceSpec::realtime_critical(Duration::from_millis(10)),
        ),
        (
            "parking guidance app backend",
            ServiceSpec {
                compute_units: 5,
                data_span: AreaSpan::Section,
                data_age: AgeClass::RealTime,
                latency_bound: Some(Duration::from_millis(50)),
                access_bytes: 4_000,
            },
        ),
        (
            "district waste-collection routing",
            ServiceSpec {
                compute_units: 80,
                data_span: AreaSpan::District,
                data_age: AgeClass::Recent,
                latency_bound: None,
                access_bytes: 200_000,
            },
        ),
        (
            "city-wide mobility analytics",
            ServiceSpec::deep_analytics(),
        ),
    ];

    println!("{:<36} {:>12} {:>16}", "service", "layer", "access latency");
    println!("{}", "-".repeat(66));
    for (name, spec) in &services {
        match engine.place(spec) {
            Ok(p) => println!(
                "{:<36} {:>12} {:>16}",
                name,
                p.layer.to_string(),
                p.access_latency.to_string()
            ),
            Err(e) => println!("{name:<36} {:>12}   {e}", "—"),
        }
    }

    // §IV.C cost model: where should a fog-1 node fetch a missing dataset?
    let cost = AccessCostModel::new(profile);
    println!("\nmissing-data fetch, 100 KB payload:");
    for option in [
        AccessOption::Neighbor { hops: 1 },
        AccessOption::Neighbor { hops: 2 },
        AccessOption::Parent,
        AccessOption::Cloud,
    ] {
        println!("  {:?}: {}", option, cost.cost(option, 100_000));
    }
    let best = cost
        .cheapest(
            &[
                AccessOption::Neighbor { hops: 2 },
                AccessOption::Parent,
                AccessOption::Cloud,
            ],
            100_000,
        )
        .expect("options are non-empty");
    println!("  -> cost model picks {best:?}");
    Ok(())
}
