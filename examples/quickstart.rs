//! Quickstart: stand up one fog-1 node, push sensor waves through the
//! SCC-DLC acquisition block, flush upward to a fog-2 node and the cloud,
//! and query the result through the open-data portal.
//!
//! Run with `cargo run --example quickstart`.

use f2c_smartcity::core::{F2cNode, FlushPolicy, RetentionPolicy};
use f2c_smartcity::dlc::preservation::{AccessRole, OpenDataPortal, QueryFilter};
use f2c_smartcity::sensors::{Catalog, ReadingGenerator, SensorType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::barcelona();

    // One section's fog node, the paper's flush policy (15-minute
    // aggregated + compressed flushes), one day of local retention.
    let mut fog1 = F2cNode::fog1(
        3,  // district: Les Corts
        21, // section id
        FlushPolicy::paper_fog1(),
        RetentionPolicy::keep(86_400),
    )?;
    let mut fog2 = F2cNode::fog2(
        3,
        FlushPolicy::plain(3600),
        RetentionPolicy::keep(7 * 86_400),
    )?;
    let mut cloud = F2cNode::cloud();

    // 50 temperature sensors report every 15 minutes for 2 hours.
    let mut sensors = ReadingGenerator::for_population(SensorType::Temperature, 50, 42);
    for wave in 0..8u64 {
        let t = wave * 900;
        let outcome = fog1.ingest_wave(sensors.wave(t), t + 1, &catalog)?;
        println!(
            "t={t:>5}s  offered {:>2} readings, stored {:>2} after dedup ({} B -> {} B)",
            outcome.offered, outcome.stored, outcome.raw_bytes, outcome.kept_bytes
        );
    }

    // Ship: fog1 -> fog2 -> cloud.
    let batch = fog1.flush(7200, &catalog)?;
    println!(
        "\nfog1 flush: {} records, {} B accounting, {} B wire, {:?} B compressed",
        batch.records.len(),
        batch.acct_bytes,
        batch.wire_bytes,
        batch.compressed_bytes
    );
    fog2.receive(batch.records, 7200);
    let batch = fog2.flush(7200, &catalog)?;
    cloud.receive(batch.records, 7200);
    println!(
        "cloud now preserves {} records permanently",
        cloud.store().len()
    );

    // Consume through the dissemination interface. Energy data is tagged
    // Restricted by the description phase, so a public query is refused
    // while a city service succeeds.
    let portal = OpenDataPortal::new();
    let public = portal.query(
        cloud.store().archive(),
        AccessRole::Public,
        QueryFilter::default(),
    );
    let service = portal.query(
        cloud.store().archive(),
        AccessRole::CityService,
        QueryFilter::default(),
    )?;
    println!(
        "\nopen-data portal: public sees {} records, city service sees {}",
        public.map(|v| v.len()).unwrap_or(0),
        service.len()
    );
    Ok(())
}
