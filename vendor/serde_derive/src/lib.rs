//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` — it never
//! invokes serialization, so the derives expand to nothing. If a future PR
//! needs real (de)serialization, vendor the genuine serde stack instead.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
