//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, and the workspace only uses
//! serde as `#[derive(Serialize, Deserialize)]` annotations on plain data
//! types — no code path actually serializes. This shim keeps those
//! annotations compiling: the traits are markers and the derives (re-exported
//! from the sibling `serde_derive` shim) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
