//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! API surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over a simple
//! wall-clock harness: each benchmark warms up briefly, then runs timed
//! batches for ~`measurement_ms` and reports mean ns/iter (plus derived
//! throughput when one was declared).
//!
//! No statistics, plots, or baselines; the numbers are honest but coarse.
//! Swap in the real criterion if rigorous comparisons are ever needed.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work-per-iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// The benchmark driver handed to group functions.
#[derive(Debug)]
pub struct Criterion {
    /// Warmup duration per benchmark, milliseconds.
    pub warmup_ms: u64,
    /// Measurement duration per benchmark, milliseconds.
    pub measurement_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Modest defaults: full `cargo bench` over all targets stays in
        // seconds, not minutes. Override via CRITERION_MEASUREMENT_MS.
        let measurement_ms = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            warmup_ms: 100,
            measurement_ms,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &name.into(), None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(config: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup: discover a batch size that runs ≳1ms, so timer overhead is
    // negligible, while calibrating the loop.
    let warmup_deadline = Instant::now() + Duration::from_millis(config.warmup_ms);
    let mut batch = 1u64;
    loop {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || Instant::now() >= warmup_deadline {
            break;
        }
        batch = batch.saturating_mul(2);
    }

    let deadline = Instant::now() + Duration::from_millis(config.measurement_ms);
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    while Instant::now() < deadline {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += batch;
        total_time += b.elapsed;
    }
    if total_iters == 0 {
        // Degenerate warmup budget; still produce one sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters = 1;
        total_time = b.elapsed;
    }

    let ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
    let mut line = format!("{name:<40} {ns_per_iter:>14.1} ns/iter");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (ns_per_iter / 1e9);
            line.push_str(&format!("  ({per_sec:>12.0} elem/s)"));
        }
        Some(Throughput::Bytes(n)) => {
            let mib_s = n as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!("  ({mib_s:>9.1} MiB/s)"));
        }
        None => {}
    }
    println!("{line}");
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags (--bench,
            // --test, filters); a plain-binary harness safely ignores them.
            $($group();)+
        }
    };
}
