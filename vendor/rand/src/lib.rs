//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored shim
//! provides exactly the API surface the workspace uses — `rngs::SmallRng`,
//! the `Rng` / `RngCore` / `SeedableRng` traits, `gen`, `gen_range` (half-open
//! and inclusive, integer and float), and `gen_bool` — over a deterministic
//! xoshiro256** core seeded through SplitMix64.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream on every platform. The streams do **not** match the upstream
//! `rand` crate bit-for-bit.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 random bits give a uniform f64 in [0, 1).
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling, the `gen::<T>()` entry point.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` via 128-bit multiply (Lemire reduction
/// with one rejection round — bias-free for every span).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// SplitMix64 — the seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
