//! Sampling strategies over fixed collections — `proptest::sample::select`.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy drawing uniformly from a fixed set of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option set");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
