//! Collection strategies — `proptest::collection::vec`.

use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The accepted size specifications for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty: {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range is empty: {r:?}");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `elem` samples with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}
