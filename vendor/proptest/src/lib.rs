//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` argument lists,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * strategies: integer and float ranges, tuples, [`collection::vec`],
//!   [`sample::select`], [`arbitrary::any`], and `&str` regex-subset
//!   patterns like `"[a-z]{1,12}"`,
//! * a deterministic runner: every test derives its RNG seed from the
//!   test's name (plus the optional `PROPTEST_SEED` env var), and the case
//!   count honours `PROPTEST_CASES`.
//!
//! Differences from upstream: no shrinking (the failure report instead
//! prints the case number and seed so a failure replays deterministically),
//! and no `prop_map`-style combinators (unused here).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point. Wraps each `fn name(pat in strategy, ..)`
/// item into a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal: expands each test item in turn. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__cases {
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng),
                )+);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    ::std::panic!(
                        "proptest {}: case {}/{} failed (replay: seed is derived \
                         from the test name{}): {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        match ::std::env::var("PROPTEST_SEED") {
                            ::std::result::Result::Ok(s) =>
                                ::std::format!(" + PROPTEST_SEED={s}"),
                            ::std::result::Result::Err(_) => ::std::string::String::new(),
                        },
                        __err
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can attach replay context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            ::std::format!($($fmt)+),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} != {}`: {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            ::std::format!($($fmt)+),
                            __l
                        )),
                    );
                }
            }
        }
    };
}
