//! Deterministic test runner plumbing: configuration, failure type, and
//! per-test RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property case: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from its message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the RNG for one property test: FNV-1a over the test name,
/// mixed with the optional `PROPTEST_SEED` env var. Same name + same seed
/// ⇒ same case sequence, on every platform.
pub fn rng_for_test(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.trim().parse::<u64>() {
            h = h.rotate_left(31) ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    SmallRng::seed_from_u64(h)
}
