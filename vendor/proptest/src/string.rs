//! Regex-subset string generation for `&str` strategies.
//!
//! Supported syntax — enough for patterns like `"[a-z]{1,12}"`:
//!
//! * literal characters,
//! * character classes `[a-z0-9_]` (ranges and single characters),
//! * repetition `{n}`, `{m,n}`, `?`, `+`, `*` (the unbounded forms cap at 8),
//! * `.` (any printable ASCII character).
//!
//! Anything else panics with a clear message rather than silently
//! generating the wrong language.

use rand::rngs::SmallRng;
use rand::Rng;

/// One parsed pattern element: a set of candidate chars + repetition range.
struct Piece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Samples one string from `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut SmallRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let reps = rng.gen_range(p.min..=p.max);
        for _ in 0..reps {
            out.push(p.choices[rng.gen_range(0..p.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(char::from).collect()
            }
            '\\' => {
                let next = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                match next {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(std::iter::once('_'))
                        .collect(),
                    's' => vec![' ', '\t'],
                    c if !c.is_alphanumeric() => vec![c],
                    c => panic!("unsupported escape \\{c} in pattern {pattern:?}"),
                }
            }
            c if "(){}|*+?^$".contains(c) => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?} (shim supports literals, classes, repetitions)")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {spec:?} in pattern {pattern:?}")
                        }),
                        hi.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {spec:?} in pattern {pattern:?}")
                        }),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {spec:?} in pattern {pattern:?}")
                        });
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "empty repetition in pattern {pattern:?}");
        pieces.push(Piece { choices, min, max });
    }
    pieces
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        body.first() != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            out.extend(lo..=hi);
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty class in pattern {pattern:?}");
    out
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::sample_pattern;

    #[test]
    fn class_with_bounded_repetition() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let s = sample_pattern("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_digits() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = sample_pattern("id-\\d{3}", &mut rng);
        assert!(s.starts_with("id-"));
        assert_eq!(s.len(), 6);
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
    }
}
