//! The [`Strategy`] trait and its implementations for ranges, tuples, and
//! string patterns.

use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a sampler over a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Strategies are usable behind references (`&S` samples like `S`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset strategies producing `String`
/// (e.g. `"[a-z]{1,12}"`). See [`crate::string`] for the supported syntax.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut SmallRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
