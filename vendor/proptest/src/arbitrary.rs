//! `any::<T>()` — whole-domain strategies for primitive types.

use core::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the full domain of `Self`.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// Strategy over the full domain of `T` — `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        // Printable ASCII keeps generated text debuggable; the workspace
        // never relies on exotic code points from `any::<char>()`.
        rng.gen_range(0x20u32..0x7f)
            .try_into()
            .expect("printable ASCII is always a char")
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        // Finite values across a wide magnitude range (no NaN/inf — the
        // workspace's properties assume ordered arithmetic).
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}
