//! The SCC-DLC model across blocks: acquisition output feeds processing
//! and preservation per the Fig. 1 flows, with quality checked exactly
//! once (the paper's design invariant).

use f2c_smartcity::dlc::acquisition::AcquisitionBlock;
use f2c_smartcity::dlc::flow::{DataFlow, FlowConfig};
use f2c_smartcity::dlc::phase::{Phase, PhaseContext};
use f2c_smartcity::dlc::preservation::{ArchivePhase, ClassificationPhase};
use f2c_smartcity::dlc::processing::{AnalysisPhase, ProcessPhase};
use f2c_smartcity::dlc::{AgeClass, Block, Pipeline};
use f2c_smartcity::sensors::{ReadingGenerator, SensorType};

#[test]
fn acquisition_to_processing_to_preservation() {
    let mut acquisition = AcquisitionBlock::new("Barcelona", 1, 5);
    let flow = DataFlow::new(FlowConfig::default());

    let mut processing = Pipeline::new(Block::Processing);
    processing
        .push(Box::new(ProcessPhase::celsius_to_fahrenheit()))
        .unwrap();
    processing.push(Box::new(AnalysisPhase::new(4.0))).unwrap();

    let mut preservation = Pipeline::new(Block::Preservation);
    preservation
        .push(Box::new(ClassificationPhase::new()))
        .unwrap();
    let archive_idx = preservation.len();
    preservation.push(Box::new(ArchivePhase::new())).unwrap();
    let _ = archive_idx;

    let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 30, 8);
    let mut processed_total = 0usize;
    let mut preserved_total = 0usize;
    for wave in 0..20u64 {
        let t = wave * 900;
        let ctx = PhaseContext::at(t + 1);
        let acquired = acquisition.ingest(gen.wave(t), &ctx);
        let routed = flow.route(acquired, t + 1);
        processed_total += processing.run(routed.real_time, &ctx).len();
        preserved_total += preservation.run(routed.archivable, &ctx).len();
    }
    // Fresh records took both paths (non-exclusive flows of Fig. 1).
    assert!(processed_total > 0);
    assert_eq!(processed_total, preserved_total);
}

#[test]
fn quality_is_checked_exactly_once_in_acquisition() {
    // The paper: "it is not necessary to implement any data quality phase
    // in the data processing nor in the data preservation blocks".
    let mut acquisition = AcquisitionBlock::new("Barcelona", 0, 0);
    let mut gen = ReadingGenerator::for_population(SensorType::AirQuality, 10, 3);
    let out = acquisition.ingest(gen.wave(0), &PhaseContext::at(1));
    for rec in &out {
        assert!(rec.quality().is_some(), "quality tagged in acquisition");
    }
    // Processing preserves the existing quality report untouched.
    let mut processing = Pipeline::new(Block::Processing);
    processing
        .push(Box::new(ProcessPhase::new(vec![])))
        .unwrap();
    let processed = processing.run(out.clone(), &PhaseContext::at(2));
    for (a, b) in out.iter().zip(&processed) {
        assert_eq!(a.quality(), b.quality());
    }
}

#[test]
fn age_classes_route_to_the_layers_of_section_iv_b() {
    let flow = DataFlow::new(FlowConfig::default());
    let mut acquisition = AcquisitionBlock::new("Barcelona", 2, 9);
    let mut gen = ReadingGenerator::for_population(SensorType::BicycleFlow, 5, 1);
    let records = acquisition.ingest(gen.wave(1_000), &PhaseContext::at(1_000));

    // At collection time the records are real-time.
    for rec in &records {
        assert_eq!(
            rec.age_class(1_100, &f2c_smartcity::dlc::age::AgePolicy::paper_default()),
            AgeClass::RealTime
        );
    }
    let routed = flow.route(records.clone(), 1_100);
    assert_eq!(routed.real_time.len(), records.len());

    // A day later the same records are historical: preservation only.
    let routed = flow.route(records, 1_000 + 90_000);
    assert!(routed.real_time.is_empty());
}

#[test]
fn mixed_block_pipelines_are_impossible_to_build() {
    let mut processing = Pipeline::new(Block::Processing);
    assert!(processing.push(Box::new(ArchivePhase::new())).is_err());
    let mut preservation = Pipeline::new(Block::Preservation);
    assert!(preservation
        .push(Box::new(AnalysisPhase::new(3.0)))
        .is_err());
}

#[test]
fn analysis_extracts_higher_value_data_that_can_be_preserved() {
    let mut analysis = AnalysisPhase::new(3.0);
    let mut gen = ReadingGenerator::for_population(SensorType::NoiseLeisureZone, 20, 4);
    for wave in 0..100u64 {
        let records = gen
            .wave(wave * 60)
            .into_iter()
            .map(f2c_smartcity::dlc::DataRecord::from_reading)
            .collect();
        analysis.run(records, &PhaseContext::at(wave * 60));
    }
    let summary = analysis.summary();
    let moments = summary.per_type[&SensorType::NoiseLeisureZone];
    assert_eq!(moments.count, 2000);
    // The extracted knowledge (mean noise level) is physically plausible.
    let mean = moments.mean().unwrap();
    assert!((25.0..=115.0).contains(&mean), "mean {mean}");
}
