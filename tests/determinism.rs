//! Determinism conformance: the seeded Barcelona pipeline (sensor
//! generation → fog-1 ingest/dedup → flush → compression) must be
//! byte-for-byte reproducible. Three independent replicas run the same
//! seeded workload; any divergence fails with the first differing byte
//! offset and a hex window around it, so a regression pinpoints *where*
//! the pipeline stopped being a pure function of its seed.
//!
//! Everything downstream leans on this guarantee: property tests replay
//! failures by seed, the traffic cross-validation compares runs, and the
//! ROADMAP's sharding/scale work needs replicas that agree.

use f2c_smartcity::citysim::net::FailurePlan;
use f2c_smartcity::compress;
use f2c_smartcity::core::runtime::populate_city;
use f2c_smartcity::core::{ChaosSite, F2cCity, F2cNode, FlushPolicy, Parallelism, RetentionPolicy};
use f2c_smartcity::query::parallel;
use f2c_smartcity::query::workload::{self, WorkloadConfig};
use f2c_smartcity::query::{EngineConfig, QueryEngine};
use f2c_smartcity::sensors::{wire, Catalog, ReadingGenerator, SensorType};

/// One full replica: ingests 24 waves (6 simulated hours at 900 s) from
/// four sensor types spanning all five categories' value models, flushing
/// every hour, and returns the concatenated flush transcript — wire text
/// of every flushed record, each flush's accounting line, and finally the
/// compressed form of the whole transcript.
fn replica(seed: u64) -> Vec<u8> {
    let catalog = Catalog::barcelona();
    let mut fog1 = F2cNode::fog1(
        3,
        21,
        FlushPolicy::paper_fog1(),
        RetentionPolicy::keep(86_400),
    )
    .expect("fog-1 node builds");
    let mut generators: Vec<ReadingGenerator> = [
        SensorType::Temperature,
        SensorType::NoiseTrafficZone,
        SensorType::ContainerOrganic,
        SensorType::ParkingSpot,
    ]
    .into_iter()
    .map(|ty| ReadingGenerator::for_population(ty, 25, seed))
    .collect();

    let mut transcript = Vec::new();
    for wave in 0..24u64 {
        let now_s = wave * 900;
        for generator in &mut generators {
            fog1.ingest_wave(generator.wave(now_s), now_s + 1, &catalog)
                .expect("ingest succeeds");
        }
        if (wave + 1) % 4 == 0 {
            let batch = fog1.flush(now_s + 2, &catalog).expect("flush succeeds");
            for record in &batch.records {
                transcript.extend_from_slice(wire::encode(record.reading()).as_bytes());
                transcript.push(b'\n');
            }
            transcript.extend_from_slice(
                format!(
                    "flush t={} records={} acct={} wire={} compressed={:?}\n",
                    now_s + 2,
                    batch.records.len(),
                    batch.acct_bytes,
                    batch.wire_bytes,
                    batch.compressed_bytes,
                )
                .as_bytes(),
            );
        }
    }
    let packed = compress::compress(&transcript).expect("transcript compresses");
    transcript.extend_from_slice(&packed);
    transcript
}

/// Asserts two replica transcripts are identical, reporting the first
/// divergent offset and a ±8-byte hex window on failure.
fn assert_byte_identical(a: &[u8], b: &[u8], label: &str) {
    if a == b {
        return;
    }
    let common = a.len().min(b.len());
    let offset = (0..common).find(|&i| a[i] != b[i]).unwrap_or(common);
    let window =
        |s: &[u8]| -> Vec<u8> { s[offset.saturating_sub(8)..(offset + 8).min(s.len())].to_vec() };
    panic!(
        "{label}: replicas diverge at byte offset {offset} \
         (lengths {} vs {});\n  a[..±8] = {:02x?}\n  b[..±8] = {:02x?}",
        a.len(),
        b.len(),
        window(a),
        window(b),
    );
}

#[test]
fn three_replicas_produce_identical_flush_transcripts() {
    let first = replica(2017);
    let second = replica(2017);
    let third = replica(2017);
    assert!(
        first.len() > 1_000,
        "transcript suspiciously small ({} bytes) — pipeline produced no flushes",
        first.len()
    );
    assert_byte_identical(&first, &second, "replica 1 vs 2");
    assert_byte_identical(&first, &third, "replica 1 vs 3");
}

#[test]
fn distinct_seeds_produce_distinct_transcripts() {
    // Guards against the degenerate way to pass the test above: a pipeline
    // that ignores its seed entirely.
    let a = replica(2017);
    let b = replica(2018);
    assert_ne!(a, b, "different seeds must change the observation stream");
}

/// One full serving replica: warm a small city through the event-driven
/// runtime, then drive a seeded closed-loop query workload (dashboard /
/// analytics / real-time mix, background ingest and flushes included)
/// and return its per-request transcript.
fn query_replica(seed: u64) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut city, 20_000, seed, 3_600, 900).expect("warm-up runs");
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 2_000,
        users: 24,
        start_s: 3_600,
        record_transcript: true,
        ..WorkloadConfig::default()
    };
    let report = workload::run(&mut engine, &config).expect("workload runs");
    report.transcript
}

#[test]
fn query_workload_replays_are_transcript_identical() {
    let first = query_replica(2017);
    let second = query_replica(2017);
    assert!(
        first.len() > 10_000,
        "transcript suspiciously small ({} bytes) — workload issued nothing",
        first.len()
    );
    assert_byte_identical(&first, &second, "query replica 1 vs 2");
    // And the seed must matter, exactly as for the ingest pipeline.
    let other = query_replica(2018);
    assert_ne!(
        first, other,
        "different seeds must change the serving transcript"
    );
}

/// One *sharded* serving replica: the same warm city and closed-loop
/// shape as [`query_replica`], driven through the district-sharded
/// runtime at `threads` worker threads. Returns the concatenated
/// per-shard transcript plus the report's rolling hash.
fn sharded_query_replica(seed: u64, threads: usize) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    city.set_parallelism(Parallelism::new(threads));
    populate_city(&mut city, 20_000, seed, 3_600, 900).expect("warm-up runs");
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 2_000,
        users: 24,
        start_s: 3_600,
        record_transcript: true,
        ..WorkloadConfig::default()
    };
    let report = parallel::run(&mut engine, &config).expect("sharded workload runs");
    let mut out = report.transcript;
    out.extend_from_slice(format!("hash={:016x}\n", report.transcript_hash).as_bytes());
    out
}

#[test]
fn sharded_query_workload_is_thread_count_invariant() {
    // The tentpole conformance sweep, serving plane: the sharded
    // closed loop's transcript and hash must be identical at every
    // worker-thread count (tests/parallel.rs holds the full-artifact
    // oracle; this pins the per-request stream itself).
    let baseline = sharded_query_replica(2017, 1);
    assert!(
        baseline.len() > 10_000,
        "transcript suspiciously small ({} bytes) — sharded workload issued nothing",
        baseline.len()
    );
    for threads in [2usize, 4, 8] {
        let other = sharded_query_replica(2017, threads);
        assert_byte_identical(
            &baseline,
            &other,
            &format!("sharded query workload, threads=1 vs threads={threads}"),
        );
    }
    let other_seed = sharded_query_replica(2018, 1);
    assert_ne!(
        baseline, other_seed,
        "different seeds must change the sharded transcript"
    );
}

/// One observability replica: a seeded chaos storm (crash windows plus
/// shipment loss/corruption coins) under live closed-loop load, returning
/// the tracer's byte-stable transcript concatenated with the registry
/// snapshot and incident timeline rendered to text — the whole
/// observability plane held to the same byte-identical oracle as the
/// flush pipeline. `threads` sets the city's shard worker count.
fn trace_replica_at(seed: u64, threads: usize) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    city.set_parallelism(Parallelism::new(threads));
    populate_city(&mut city, 5_000, seed, 3_600, 900).expect("warm-up runs");
    let mut plan = FailurePlan::with_seed(seed);
    plan.set_shipment_loss(0.10);
    plan.set_shipment_corruption(0.08);
    city.set_failures(plan);
    city.inject_node_outage(ChaosSite::Fog1(5), 3_650, 3_980);
    city.inject_node_outage(ChaosSite::Cloud, 4_000, 4_100);
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 2_000,
        users: 24,
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 5_000,
        ..WorkloadConfig::default()
    };
    workload::run(&mut engine, &config).expect("storm workload runs");
    let mut out = engine.city().tracer().encode();
    let snapshot = engine.city().metrics().snapshot();
    for (key, value) in &snapshot.counters {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    for (key, value) in &snapshot.gauges {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    for incident in engine.city().timeline().iter() {
        out.extend_from_slice(
            format!(
                "incident t={} site={} kind={}\n",
                incident.at_s,
                incident.site,
                incident.kind.label()
            )
            .as_bytes(),
        );
    }
    out
}

#[test]
fn chaos_storm_trace_transcripts_are_replica_identical() {
    let first = trace_replica_at(2017, 1);
    let second = trace_replica_at(2017, 1);
    let third = trace_replica_at(2017, 1);
    assert!(
        first.len() > 10_000,
        "trace transcript suspiciously small ({} bytes) — storm traced nothing",
        first.len()
    );
    assert_byte_identical(&first, &second, "trace replica 1 vs 2");
    assert_byte_identical(&first, &third, "trace replica 1 vs 3");
    // And the seed must matter: a different storm traces differently.
    let other = trace_replica_at(2018, 1);
    assert_ne!(
        first, other,
        "different seeds must change the trace transcript"
    );
}

#[test]
fn chaos_storm_traces_are_thread_count_invariant() {
    // The tentpole conformance sweep, flush/heal/ingest plane: the whole
    // observability byte stream (traces + snapshot + timeline) of a
    // chaos storm must be identical at every worker-thread count,
    // because district shards merge in canonical order at barriers.
    let baseline = trace_replica_at(2017, 1);
    for threads in [2usize, 4, 8] {
        let other = trace_replica_at(2017, threads);
        assert_byte_identical(
            &baseline,
            &other,
            &format!("chaos storm, threads=1 vs threads={threads}"),
        );
    }
}

/// One flush-codec replica: the raw `tsenc` payload bytes of every
/// shipment a seeded warm-up puts on either hop, in canonical capture
/// order. Cross-batch dictionary state makes each payload a function of
/// every prior flush of its stream, so this transcript pins the codec's
/// whole lifecycle — probe choices, dictionary commits, fallback
/// verdicts — to the seed.
fn shipment_replica(seed: u64) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    city.set_capture_shipments(true);
    populate_city(&mut city, 20_000, seed, 3_600, 900).expect("warm-up runs");
    let mut out = Vec::new();
    for shipment in city.take_shipment_log() {
        out.extend_from_slice(
            format!(
                "shipment hop={} origin={} t={}\n",
                shipment.hop, shipment.origin, shipment.at_s
            )
            .as_bytes(),
        );
        out.extend_from_slice(&shipment.payload);
        out.push(b'\n');
    }
    out
}

#[test]
fn encoded_shipment_streams_are_replica_identical() {
    let first = shipment_replica(2017);
    let second = shipment_replica(2017);
    assert!(
        first.len() > 1_000,
        "shipment transcript suspiciously small ({} bytes) — no flushes shipped",
        first.len()
    );
    assert_byte_identical(&first, &second, "shipment replica 1 vs 2");
    let other = shipment_replica(2018);
    assert_ne!(
        first, other,
        "different seeds must change the encoded shipment stream"
    );
}

#[test]
fn divergence_reporting_points_at_first_differing_byte() {
    // The reporter itself is load-bearing diagnostics; pin its message.
    let err = std::panic::catch_unwind(|| {
        assert_byte_identical(b"abcdef", b"abcXef", "probe");
    })
    .expect_err("differing inputs must panic");
    let message = err
        .downcast_ref::<String>()
        .expect("panic carries a String");
    assert!(
        message.contains("byte offset 3"),
        "unexpected divergence report: {message}"
    );
}
