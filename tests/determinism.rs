//! Determinism conformance: the seeded Barcelona pipeline (sensor
//! generation → fog-1 ingest/dedup → flush → compression) must be
//! byte-for-byte reproducible. Three independent replicas run the same
//! seeded workload; any divergence fails with the first differing byte
//! offset and a hex window around it, so a regression pinpoints *where*
//! the pipeline stopped being a pure function of its seed.
//!
//! Everything downstream leans on this guarantee: property tests replay
//! failures by seed, the traffic cross-validation compares runs, and the
//! ROADMAP's sharding/scale work needs replicas that agree.

use f2c_smartcity::citysim::net::FailurePlan;
use f2c_smartcity::compress;
use f2c_smartcity::core::runtime::populate_city;
use f2c_smartcity::core::{ChaosSite, F2cCity, F2cNode, FlushPolicy, RetentionPolicy};
use f2c_smartcity::query::workload::{self, WorkloadConfig};
use f2c_smartcity::query::{EngineConfig, QueryEngine};
use f2c_smartcity::sensors::{wire, Catalog, ReadingGenerator, SensorType};

/// One full replica: ingests 24 waves (6 simulated hours at 900 s) from
/// four sensor types spanning all five categories' value models, flushing
/// every hour, and returns the concatenated flush transcript — wire text
/// of every flushed record, each flush's accounting line, and finally the
/// compressed form of the whole transcript.
fn replica(seed: u64) -> Vec<u8> {
    let catalog = Catalog::barcelona();
    let mut fog1 = F2cNode::fog1(
        3,
        21,
        FlushPolicy::paper_fog1(),
        RetentionPolicy::keep(86_400),
    )
    .expect("fog-1 node builds");
    let mut generators: Vec<ReadingGenerator> = [
        SensorType::Temperature,
        SensorType::NoiseTrafficZone,
        SensorType::ContainerOrganic,
        SensorType::ParkingSpot,
    ]
    .into_iter()
    .map(|ty| ReadingGenerator::for_population(ty, 25, seed))
    .collect();

    let mut transcript = Vec::new();
    for wave in 0..24u64 {
        let now_s = wave * 900;
        for generator in &mut generators {
            fog1.ingest_wave(generator.wave(now_s), now_s + 1, &catalog)
                .expect("ingest succeeds");
        }
        if (wave + 1) % 4 == 0 {
            let batch = fog1.flush(now_s + 2, &catalog).expect("flush succeeds");
            for record in &batch.records {
                transcript.extend_from_slice(wire::encode(record.reading()).as_bytes());
                transcript.push(b'\n');
            }
            transcript.extend_from_slice(
                format!(
                    "flush t={} records={} acct={} wire={} compressed={:?}\n",
                    now_s + 2,
                    batch.records.len(),
                    batch.acct_bytes,
                    batch.wire_bytes,
                    batch.compressed_bytes,
                )
                .as_bytes(),
            );
        }
    }
    let packed = compress::compress(&transcript).expect("transcript compresses");
    transcript.extend_from_slice(&packed);
    transcript
}

/// Asserts two replica transcripts are identical, reporting the first
/// divergent offset and a ±8-byte hex window on failure.
fn assert_byte_identical(a: &[u8], b: &[u8], label: &str) {
    if a == b {
        return;
    }
    let common = a.len().min(b.len());
    let offset = (0..common).find(|&i| a[i] != b[i]).unwrap_or(common);
    let window =
        |s: &[u8]| -> Vec<u8> { s[offset.saturating_sub(8)..(offset + 8).min(s.len())].to_vec() };
    panic!(
        "{label}: replicas diverge at byte offset {offset} \
         (lengths {} vs {});\n  a[..±8] = {:02x?}\n  b[..±8] = {:02x?}",
        a.len(),
        b.len(),
        window(a),
        window(b),
    );
}

#[test]
fn three_replicas_produce_identical_flush_transcripts() {
    let first = replica(2017);
    let second = replica(2017);
    let third = replica(2017);
    assert!(
        first.len() > 1_000,
        "transcript suspiciously small ({} bytes) — pipeline produced no flushes",
        first.len()
    );
    assert_byte_identical(&first, &second, "replica 1 vs 2");
    assert_byte_identical(&first, &third, "replica 1 vs 3");
}

#[test]
fn distinct_seeds_produce_distinct_transcripts() {
    // Guards against the degenerate way to pass the test above: a pipeline
    // that ignores its seed entirely.
    let a = replica(2017);
    let b = replica(2018);
    assert_ne!(a, b, "different seeds must change the observation stream");
}

/// One full serving replica: warm a small city through the event-driven
/// runtime, then drive a seeded closed-loop query workload (dashboard /
/// analytics / real-time mix, background ingest and flushes included)
/// and return its per-request transcript.
fn query_replica(seed: u64) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut city, 20_000, seed, 3_600, 900).expect("warm-up runs");
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 2_000,
        users: 24,
        start_s: 3_600,
        record_transcript: true,
        ..WorkloadConfig::default()
    };
    let report = workload::run(&mut engine, &config).expect("workload runs");
    report.transcript
}

#[test]
fn query_workload_replays_are_transcript_identical() {
    let first = query_replica(2017);
    let second = query_replica(2017);
    assert!(
        first.len() > 10_000,
        "transcript suspiciously small ({} bytes) — workload issued nothing",
        first.len()
    );
    assert_byte_identical(&first, &second, "query replica 1 vs 2");
    // And the seed must matter, exactly as for the ingest pipeline.
    let other = query_replica(2018);
    assert_ne!(
        first, other,
        "different seeds must change the serving transcript"
    );
}

/// One observability replica: a seeded chaos storm (crash windows plus
/// shipment loss/corruption coins) under live closed-loop load, returning
/// the tracer's byte-stable transcript concatenated with the registry
/// snapshot rendered to text — the whole observability plane held to the
/// same byte-identical oracle as the flush pipeline.
fn trace_replica(seed: u64) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut city, 5_000, seed, 3_600, 900).expect("warm-up runs");
    let mut plan = FailurePlan::with_seed(seed);
    plan.set_shipment_loss(0.10);
    plan.set_shipment_corruption(0.08);
    city.set_failures(plan);
    city.inject_node_outage(ChaosSite::Fog1(5), 3_650, 3_980);
    city.inject_node_outage(ChaosSite::Cloud, 4_000, 4_100);
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 2_000,
        users: 24,
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 5_000,
        ..WorkloadConfig::default()
    };
    workload::run(&mut engine, &config).expect("storm workload runs");
    let mut out = engine.city().tracer().encode();
    let snapshot = engine.city().metrics().snapshot();
    for (key, value) in &snapshot.counters {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    for (key, value) in &snapshot.gauges {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    out
}

#[test]
fn chaos_storm_trace_transcripts_are_replica_identical() {
    let first = trace_replica(2017);
    let second = trace_replica(2017);
    let third = trace_replica(2017);
    assert!(
        first.len() > 10_000,
        "trace transcript suspiciously small ({} bytes) — storm traced nothing",
        first.len()
    );
    assert_byte_identical(&first, &second, "trace replica 1 vs 2");
    assert_byte_identical(&first, &third, "trace replica 1 vs 3");
    // And the seed must matter: a different storm traces differently.
    let other = trace_replica(2018);
    assert_ne!(
        first, other,
        "different seeds must change the trace transcript"
    );
}

#[test]
fn divergence_reporting_points_at_first_differing_byte() {
    // The reporter itself is load-bearing diagnostics; pin its message.
    let err = std::panic::catch_unwind(|| {
        assert_byte_identical(b"abcdef", b"abcXef", "probe");
    })
    .expect_err("differing inputs must panic");
    let message = err
        .downcast_ref::<String>()
        .expect("panic carries a String");
    assert!(
        message.contains("byte offset 3"),
        "unexpected divergence report: {message}"
    );
}
