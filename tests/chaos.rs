//! Chaos-plane integration: injected faults (node crash windows,
//! flush-shipment loss, sketch corruption) degrade the hierarchy by
//! *availability only* — deferred flush waves, lost edge ingest, punched
//! coverage holes — and sketch anti-entropy heals every hole once the
//! fault clears. The oracle throughout: a chaos city fed the surviving
//! stream converges to byte-equal state with a fault-free control city
//! fed the same stream, and every degradation is attributable to an
//! injected fault through the incident timeline.

use f2c_smartcity::citysim::net::FailurePlan;
use f2c_smartcity::core::{ChaosSite, F2cCity, IncidentKind, Parallelism};
use f2c_smartcity::sensors::{Reading, ReadingGenerator, SensorType};

/// One deterministic sensor wave for a section at an instant.
fn wave(section: usize, t: u64) -> Vec<Reading> {
    let seed = (section as u64) * 1_000 + t;
    ReadingGenerator::for_population(SensorType::Traffic, 30, seed).wave(t)
}

/// Ingest the same pre-generated waves into a city, skipping the waves a
/// chaos run lost at a crashed edge node (`lost` holds `(section, t)`).
fn ingest_waves(city: &mut F2cCity, waves: &[(usize, u64)], lost: &[(usize, u64)]) {
    for &(section, t) in waves {
        if lost.contains(&(section, t)) {
            continue;
        }
        city.ingest(section, wave(section, t), t).expect("ingests");
    }
}

#[test]
fn crashed_edge_node_loses_ingest_and_records_it() {
    let mut city = F2cCity::barcelona().unwrap();
    city.set_failures(FailurePlan::with_seed(7));
    city.inject_node_outage(ChaosSite::Fog1(3), 100, 200);

    let out = city.ingest(3, wave(3, 150), 150).unwrap();
    assert_eq!(out.offered, 30, "the wave was offered");
    assert_eq!(out.stored, 0, "a crashed node stores nothing");
    let lost: Vec<_> = city
        .timeline()
        .iter()
        .filter(|i| matches!(i.kind, IncidentKind::IngestLost { .. }))
        .collect();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].site, ChaosSite::Fog1(3));

    // Outside the window the same node ingests normally.
    let out = city.ingest(3, wave(3, 250), 250).unwrap();
    assert!(out.stored > 0, "recovered node stores again");
}

#[test]
fn crash_window_defers_the_flush_wave_then_catches_up_exactly() {
    let waves: Vec<(usize, u64)> = vec![(0, 100), (0, 500), (5, 100), (5, 500)];

    let mut chaos = F2cCity::barcelona().unwrap();
    chaos.set_failures(FailurePlan::with_seed(7));
    // Section 0's node is down across the first flush epoch only.
    chaos.inject_node_outage(ChaosSite::Fog1(0), 800, 1_000);
    ingest_waves(&mut chaos, &waves, &[]);

    chaos.flush_all(900).unwrap();
    let after_storm = chaos.cloud().store().len();
    let deferred: Vec<_> = chaos
        .timeline()
        .at_site(ChaosSite::Fog1(0))
        .filter(|i| i.kind == IncidentKind::NodeDown)
        .collect();
    assert_eq!(deferred.len(), 1, "the crashed hop skipped its turn");

    // Recovery: the next wave ships the deferred records; nothing lost.
    chaos.flush_all(1_800).unwrap();
    let mut control = F2cCity::barcelona().unwrap();
    ingest_waves(&mut control, &waves, &[]);
    control.flush_all(900).unwrap();
    control.flush_all(1_800).unwrap();

    assert!(after_storm < control.cloud().store().len());
    assert_eq!(
        chaos.cloud().store().len(),
        control.cloud().store().len(),
        "a deferred wave must catch up with zero record loss"
    );
    assert_eq!(
        chaos.cloud().sketches().len(),
        control.cloud().sketches().len()
    );
}

#[test]
fn corruption_punches_holes_and_anti_entropy_heals_them_in_the_same_wave() {
    let waves: Vec<(usize, u64)> = vec![(0, 100), (0, 500), (12, 300)];

    let mut chaos = F2cCity::barcelona().unwrap();
    let mut plan = FailurePlan::with_seed(7);
    plan.set_shipment_corruption(1.0);
    chaos.set_failures(plan);
    ingest_waves(&mut chaos, &waves, &[]);
    chaos.flush_all(900).unwrap();

    let summary = chaos.timeline().summary();
    assert!(
        summary.get("sketch-corrupted").copied().unwrap_or(0) > 0,
        "a certain corruption coin must fire on shipped sketches"
    );
    assert!(
        summary.get("hole-punched").copied().unwrap_or(0) > 0
            && summary.get("hole-healed").copied().unwrap_or(0) > 0,
        "punched holes must heal in the same wave's anti-entropy round"
    );
    for d in 0..chaos.district_count() {
        assert!(chaos.fog2(d).sketches().holes_sorted().is_empty());
        assert!(chaos
            .timeline()
            .unhealed_holes(ChaosSite::Fog2(d))
            .is_empty());
    }
    assert!(chaos.cloud().sketches().holes_sorted().is_empty());
    assert!(chaos.timeline().unhealed_holes(ChaosSite::Cloud).is_empty());

    // The healed ledgers are *byte-identical* to a fault-free control's:
    // healing replaces the damaged partial with the shipper's
    // authoritative fold, never a lossy reconstruction.
    let mut control = F2cCity::barcelona().unwrap();
    ingest_waves(&mut control, &waves, &[]);
    control.flush_all(900).unwrap();
    assert_eq!(
        chaos.cloud().sketches().len(),
        control.cloud().sketches().len()
    );
    for key in control.cloud().sketches().keys() {
        let (want, _) = control.cloud().sketches().entry(key).unwrap();
        let (got, _) = chaos
            .cloud()
            .sketches()
            .entry(key)
            .expect("healed ledger holds every control key");
        assert_eq!(
            got, want,
            "healed partial must equal the authoritative fold"
        );
    }
}

#[test]
fn corrupted_payload_defers_the_wave_and_loses_nothing() {
    // A payload-corruption verdict is link-layer detected, so the sender
    // defers the whole wave *before* the batch is taken — the flush
    // codec's cross-batch dictionary must never advance past a shipment
    // the receiver never applied. Once the fault clears, the deferred
    // records catch up byte-exactly.
    let waves: Vec<(usize, u64)> = vec![(0, 100), (0, 500), (5, 100), (12, 300)];

    let mut chaos = F2cCity::barcelona().unwrap();
    let mut plan = FailurePlan::with_seed(7);
    plan.set_payload_corruption(1.0);
    chaos.set_failures(plan);
    ingest_waves(&mut chaos, &waves, &[]);
    chaos.flush_all(900).unwrap();

    // A certain coin defers every loaded hop; nothing reaches the cloud.
    assert_eq!(
        chaos.cloud().store().len(),
        0,
        "deferred waves must not ship"
    );
    let corrupted = chaos
        .timeline()
        .summary()
        .get("shipment-corrupted")
        .copied()
        .unwrap_or(0);
    assert!(
        corrupted > 0,
        "a certain corruption coin must record ShipmentCorrupted incidents"
    );
    for incident in chaos.timeline().iter() {
        assert_ne!(
            incident.kind,
            IncidentKind::ShipmentLost,
            "payload corruption must not masquerade as shipment loss"
        );
    }

    // The fault clears; the next wave ships everything that was held.
    chaos.set_failures(FailurePlan::none());
    chaos.flush_all(1_800).unwrap();
    let mut control = F2cCity::barcelona().unwrap();
    ingest_waves(&mut control, &waves, &[]);
    control.flush_all(900).unwrap();
    control.flush_all(1_800).unwrap();
    assert_eq!(
        chaos.cloud().store().len(),
        control.cloud().store().len(),
        "a deferred wave must catch up with zero record loss"
    );
    assert_eq!(
        chaos.cloud().sketches().len(),
        control.cloud().sketches().len()
    );
}

#[test]
fn district_crash_blocks_children_and_recovery_converges() {
    // Every section in district 2 keeps ingesting while its fog-2 is
    // down over two flush epochs; children's waves are FlushBlocked
    // (their uplink dead-ends at the crashed parent), then catch up.
    let sections = {
        let city = F2cCity::barcelona().unwrap();
        city.sections_in_district(2)
    };
    let waves: Vec<(usize, u64)> = sections
        .iter()
        .flat_map(|&s| [(s, 200), (s, 1_100)])
        .collect();

    let mut chaos = F2cCity::barcelona().unwrap();
    chaos.set_failures(FailurePlan::with_seed(7));
    chaos.inject_node_outage(ChaosSite::Fog2(2), 800, 2_000);
    ingest_waves(&mut chaos, &waves, &[]);
    chaos.flush_all(900).unwrap();
    chaos.flush_all(1_800).unwrap();

    let blocked = chaos
        .timeline()
        .summary()
        .get("flush-blocked")
        .copied()
        .unwrap_or(0);
    assert!(
        blocked >= 2 * sections.len() as u64,
        "every child hop must report FlushBlocked per crashed epoch"
    );
    let down = chaos
        .timeline()
        .at_site(ChaosSite::Fog2(2))
        .filter(|i| i.kind == IncidentKind::NodeDown)
        .count();
    assert_eq!(down, 2, "the crashed fog-2's own uplink skipped both turns");

    chaos.flush_all(2_700).unwrap();
    let mut control = F2cCity::barcelona().unwrap();
    ingest_waves(&mut control, &waves, &[]);
    for t in [900, 1_800, 2_700] {
        control.flush_all(t).unwrap();
    }
    assert_eq!(chaos.cloud().store().len(), control.cloud().store().len());
    assert_eq!(
        chaos.cloud().sketches().len(),
        control.cloud().sketches().len()
    );
    assert!(chaos.cloud().sketches().holes_sorted().is_empty());
}

#[test]
fn fault_schedules_replay_deterministically() {
    let run = || {
        let mut city = F2cCity::barcelona().unwrap();
        let mut plan = FailurePlan::with_seed(2_017);
        plan.set_shipment_loss(0.3);
        plan.set_shipment_corruption(0.3);
        plan.set_payload_corruption(0.2);
        city.set_failures(plan);
        city.inject_node_outage(ChaosSite::Fog1(9), 700, 1_000);
        city.inject_node_outage(ChaosSite::Cloud, 1_700, 1_900);
        let waves: Vec<(usize, u64)> =
            vec![(9, 100), (9, 800), (30, 400), (30, 1_300), (60, 1_600)];
        ingest_waves(&mut city, &waves, &[(9, 800)]);
        for t in [900, 1_800, 2_700, 3_600] {
            city.flush_all(t).unwrap();
        }
        city
    };
    let (a, b, c) = (run(), run(), run());
    assert_eq!(
        a.timeline(),
        b.timeline(),
        "replica timelines must be identical"
    );
    assert_eq!(
        b.timeline(),
        c.timeline(),
        "replica timelines must be identical"
    );
    assert_eq!(a.cloud().store().len(), b.cloud().store().len());
    assert_eq!(a.cloud().sketches().len(), c.cloud().sketches().len());
}

mod oracle {
    use super::*;
    use proptest::prelude::*;

    /// Maps a generated code onto one of the 84 chaos sites.
    fn site_of(code: u8) -> ChaosSite {
        match code % 84 {
            c if c < 73 => ChaosSite::Fog1(c as usize),
            c if c < 83 => ChaosSite::Fog2((c - 73) as usize),
            _ => ChaosSite::Cloud,
        }
    }

    /// Runs one storm replica at `threads` worker threads: install the
    /// fault plan and crash windows, ingest the storm waves (tracking
    /// which ones a crashed edge lost), and run the three storm-epoch
    /// flush waves. The plan stays installed so attribution checks can
    /// still interrogate it.
    fn storm_city(
        threads: usize,
        seed: u64,
        loss_milli: u32,
        corrupt_milli: u32,
        payload_milli: u32,
        outages: &[(u8, u64, u64)],
        waves: &[(usize, u64)],
    ) -> (F2cCity, Vec<(usize, u64)>) {
        let mut chaos = F2cCity::barcelona().unwrap();
        chaos.set_parallelism(Parallelism::new(threads));
        let mut plan = FailurePlan::with_seed(seed);
        plan.set_shipment_loss(f64::from(loss_milli) / 1_000.0);
        plan.set_shipment_corruption(f64::from(corrupt_milli) / 1_000.0);
        plan.set_payload_corruption(f64::from(payload_milli) / 1_000.0);
        chaos.set_failures(plan);
        for &(code, from, len) in outages {
            chaos.inject_node_outage(site_of(code), from, from + len);
        }
        let mut lost = Vec::new();
        for &(section, t) in waves {
            let out = chaos.ingest(section, wave(section, t), t).unwrap();
            if out.stored == 0 && chaos.site_is_down(ChaosSite::Fog1(section), t) {
                lost.push((section, t));
            }
        }
        for t in [900, 1_800, 2_700] {
            chaos.flush_all(t).unwrap();
        }
        (chaos, lost)
    }

    /// A byte-stable rendering of a city's incident timeline.
    fn timeline_text(city: &F2cCity) -> String {
        let mut out = String::new();
        for incident in city.timeline().iter() {
            out.push_str(&format!(
                "t={} site={} kind={}\n",
                incident.at_s,
                incident.site,
                incident.kind.label()
            ));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tentpole oracle: under any seeded fault schedule the
        /// hierarchy degrades by availability only. After the storm
        /// clears and healthy waves run, (a) every upper-tier ledger is
        /// hole-free, (b) stores and ledgers are byte-equal to a
        /// fault-free control fed the surviving stream, and (c) every
        /// deferred hop on the timeline is attributable to a fault that
        /// was actually active at that instant.
        #[test]
        fn chaos_degrades_availability_never_correctness(
            // A fault schedule: a seed for the shipment coins, loss and
            // corruption probabilities in milli-units, and up to three
            // crash windows inside the 3-epoch storm `[0, 2_700)`.
            seed in any::<u64>(),
            loss_milli in 0u32..=300,
            corrupt_milli in 0u32..=300,
            payload_milli in 0u32..=300,
            outages in proptest::collection::vec(
                (any::<u8>(), 0u64..2_400, 100u64..1_200),
                0..3,
            ),
        ) {
            let waves: Vec<(usize, u64)> = vec![
                (0, 100), (0, 1_000), (7, 400), (21, 700),
                (21, 1_600), (40, 1_300), (72, 2_200),
            ];

            // The storm runs on four worker threads; a single-thread
            // replica of the same storm must agree on every outcome —
            // losses, the incident timeline, and (after healing below)
            // the archive and ledgers. Chaos and the sharded runtime
            // must compose without perturbing each other.
            let (mut chaos, lost) =
                storm_city(4, seed, loss_milli, corrupt_milli, payload_milli, &outages, &waves);
            let (mut chaos_seq, lost_seq) =
                storm_city(1, seed, loss_milli, corrupt_milli, payload_milli, &outages, &waves);
            prop_assert_eq!(&lost, &lost_seq);
            prop_assert_eq!(timeline_text(&chaos), timeline_text(&chaos_seq));

            // (c) Attribution, checked while the plan is still installed:
            // every deferral names a fault that was live at that instant.
            for incident in chaos.timeline().iter() {
                match incident.kind {
                    IncidentKind::NodeDown | IncidentKind::IngestLost { .. } => {
                        prop_assert!(chaos.site_is_down(incident.site, incident.at_s));
                    }
                    IncidentKind::ShipmentLost => {
                        prop_assert!(loss_milli > 0);
                    }
                    IncidentKind::SketchCorrupted { .. } => {
                        prop_assert!(corrupt_milli > 0);
                    }
                    IncidentKind::ShipmentCorrupted => {
                        prop_assert!(payload_milli > 0);
                    }
                    _ => {}
                }
            }

            // The storm clears; two healthy waves ship what was deferred
            // and anti-entropy re-ships over every hole — on both
            // replicas, which must heal to the same place.
            chaos.set_failures(FailurePlan::none());
            chaos.flush_all(3_600).unwrap();
            chaos.flush_all(4_500).unwrap();
            chaos_seq.set_failures(FailurePlan::none());
            chaos_seq.flush_all(3_600).unwrap();
            chaos_seq.flush_all(4_500).unwrap();
            prop_assert_eq!(timeline_text(&chaos), timeline_text(&chaos_seq));
            prop_assert_eq!(chaos.cloud().store().len(), chaos_seq.cloud().store().len());
            prop_assert_eq!(
                chaos.cloud().sketches().len(),
                chaos_seq.cloud().sketches().len()
            );

            // (a) hole-free everywhere above fog 1.
            for d in 0..chaos.district_count() {
                prop_assert!(chaos.fog2(d).sketches().holes_sorted().is_empty());
            }
            prop_assert!(chaos.cloud().sketches().holes_sorted().is_empty());

            // (b) byte-equality with the fault-free control on the
            // surviving stream: same archive, same folds.
            let mut control = F2cCity::barcelona().unwrap();
            ingest_waves(&mut control, &waves, &lost);
            for t in [900, 1_800, 2_700, 3_600, 4_500] {
                control.flush_all(t).unwrap();
            }
            prop_assert_eq!(chaos.cloud().store().len(), control.cloud().store().len());
            prop_assert_eq!(chaos.cloud().sketches().len(), control.cloud().sketches().len());
            for key in control.cloud().sketches().keys() {
                let (want, _) = control.cloud().sketches().entry(key).unwrap();
                let got = chaos.cloud().sketches().entry(key);
                prop_assert!(got.is_some());
                prop_assert_eq!(got.unwrap().0, want);
            }
        }
    }
}
