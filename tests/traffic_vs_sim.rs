//! Cross-validation: the event-driven simulation must agree with the
//! analytic Table I model, and the F2C architecture must beat the
//! centralized baseline by the paper's factors.

use f2c_smartcity::core::baseline::{simulate_baseline, BaselineConfig};
use f2c_smartcity::core::runtime::{simulate, SimConfig};
use f2c_smartcity::core::traffic::TrafficModel;

fn f2c_small() -> SimConfig {
    let mut c = SimConfig::paper_scaled();
    c.scale = 4_000;
    c.horizon_s = 6 * 3600;
    c
}

#[test]
fn sim_and_model_agree_on_totals() {
    let report = simulate(f2c_small()).unwrap();
    let model = TrafficModel::paper();
    let totals = model.table1_totals();
    // Scale the 6-hour run to a day and back up by population.
    let day_factor = 86_400.0 / report.horizon_s as f64;
    let raw = report.scaled_up(report.raw_acct_bytes) as f64 * day_factor;
    let dedup = report.scaled_up(report.fog1_uplink_acct_bytes) as f64 * day_factor;
    let raw_err = (raw - totals.daily_fog1 as f64).abs() / totals.daily_fog1 as f64;
    let dedup_err = (dedup - totals.daily_fog2 as f64).abs() / totals.daily_fog2 as f64;
    assert!(raw_err < 0.12, "raw {:.1}% off", raw_err * 100.0);
    assert!(dedup_err < 0.15, "dedup {:.1}% off", dedup_err * 100.0);
}

#[test]
fn f2c_to_baseline_ratio_matches_table1() {
    // Table I predicts F2C ships 5.036/8.583 ≈ 58.7% of the baseline's
    // bytes to the cloud.
    let f2c = simulate(f2c_small()).unwrap();
    let mut bc = BaselineConfig::paper_scaled();
    bc.scale = 4_000;
    bc.horizon_s = 6 * 3600;
    let baseline = simulate_baseline(bc).unwrap();
    let measured = f2c.fog2_uplink_acct_bytes as f64 / baseline.cloud_ingress_acct_bytes as f64;
    let predicted = 5_036_071_584.0 / 8_583_503_168.0;
    assert!(
        (measured - predicted).abs() < 0.08,
        "cloud-ingress ratio {measured:.3}, Table I predicts {predicted:.3}"
    );
}

#[test]
fn per_category_dedup_rates_match_table1() {
    // Full-day horizon: every sensor's first reading is admitted
    // unconditionally, adding redundancy/waves excess keep, so short
    // horizons bias the keep rate upward (garbage at 50 tx/day over 6 h
    // would carry ≈ +0.06 bias plus small-population noise — right at the
    // tolerance). Over 24 h the bias falls below +0.015.
    let mut config = f2c_small();
    config.horizon_s = 86_400;
    let report = simulate(config).unwrap();
    for row in TrafficModel::paper().fig7_rows() {
        let t = report.per_category[&row.category];
        if t.raw == 0 {
            continue;
        }
        let measured_keep = t.after_dedup as f64 / t.raw as f64;
        let predicted_keep = row.after_dedup as f64 / row.raw as f64;
        assert!(
            (measured_keep - predicted_keep).abs() < 0.09,
            "{}: keep rate {measured_keep:.3} vs Table I {predicted_keep:.3}",
            row.category
        );
        assert!(
            measured_keep >= predicted_keep - 0.02,
            "{}: dedup cannot beat the generator's redundancy",
            row.category
        );
    }
}

#[test]
fn compression_ratio_improves_with_batch_size() {
    // Scaled-down simulations ship tiny flush batches, which compress
    // poorly (per-stream headers, cold Huffman tables). The ratio must
    // improve monotonically as populations (hence batches) grow — at full
    // scale (~1.2 MB per flush) it reaches the paper's zip class, which
    // `f2c-bench`'s E3 harness measures directly on full-size batches.
    let ratio_at = |scale: u64| {
        let mut c = SimConfig::paper_scaled();
        c.scale = scale;
        c.horizon_s = 2 * 3600;
        simulate(c).unwrap().compression_ratio()
    };
    let small = ratio_at(4_000);
    let large = ratio_at(400);
    assert!(
        large < small,
        "bigger batches must compress better ({large:.3} vs {small:.3})"
    );
    assert!(
        large < 0.55,
        "scale-400 batches should be below 0.55, got {large:.3}"
    );
}
