//! Failure injection across crates: WAN outages and packet loss on the
//! Barcelona topology, exercising the paper's fault-tolerance claims
//! (§IV.D: shorter paths cross fewer failure domains).

use f2c_smartcity::citysim::barcelona::{BarcelonaTopology, LatencyProfile};
use f2c_smartcity::citysim::net::FailurePlan;
use f2c_smartcity::citysim::time::SimTime;
use f2c_smartcity::citysim::Error as NetError;
use f2c_smartcity::core::request::AccessSimulator;

fn wan_outage_city(until_s: u64) -> BarcelonaTopology {
    let mut city = BarcelonaTopology::build(&LatencyProfile::default());
    let cloud = city.cloud();
    let mut links = Vec::new();
    for &f2 in city.fog2_nodes() {
        for &(peer, link) in city.network().topology().neighbors(f2) {
            if peer == cloud {
                links.push(link);
            }
        }
    }
    let mut plan = FailurePlan::with_seed(42);
    for link in links {
        plan.add_outage(link, SimTime::ZERO, SimTime::from_secs(until_s));
    }
    city.network_mut().set_failures(plan);
    city
}

#[test]
fn fog_reads_survive_a_total_wan_outage() {
    let mut sim = AccessSimulator::new(wan_outage_city(3600));
    for section in [0usize, 20, 40, 72] {
        let out = sim.realtime_read_f2c(section, 1_000);
        assert!(out.latency.as_micros() > 0);
    }
}

#[test]
fn centralized_reads_fail_during_the_outage() {
    let mut sim = AccessSimulator::new(wan_outage_city(3600));
    let err = sim.realtime_read_centralized(0, 1_000).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("down"), "unexpected error: {msg}");
}

#[test]
fn historical_reads_recover_after_the_outage_window() {
    let mut city = wan_outage_city(10);
    // The outage covers [0, 10); a send at t=10 succeeds.
    let fog1 = city.fog1_nodes()[0];
    let cloud = city.cloud();
    assert!(matches!(
        city.network_mut().send(fog1, cloud, 100, SimTime::ZERO),
        Err(NetError::LinkDown { .. })
    ));
    assert!(city
        .network_mut()
        .send(fog1, cloud, 100, SimTime::from_secs(10))
        .is_ok());
}

#[test]
fn packet_loss_drops_a_predictable_fraction() {
    let mut city = BarcelonaTopology::build(&LatencyProfile::default());
    // 20% loss on the first fog1->fog2 link.
    let f1 = city.fog1_nodes()[0];
    let (_, link) = city.network().topology().neighbors(f1)[0];
    let mut plan = FailurePlan::with_seed(9);
    plan.set_loss(link, 0.2);
    city.network_mut().set_failures(plan);

    let parent = city.parent_of(0);
    let mut lost = 0;
    for i in 0..1_000u64 {
        let t = SimTime::from_secs(i);
        if city.network_mut().send(f1, parent, 100, t).is_err() {
            lost += 1;
        }
    }
    assert!(
        (120..280).contains(&lost),
        "expected ~200/1000 losses, got {lost}"
    );
    // Lost messages still loaded the wire (they were metered).
    assert_eq!(city.network().meter().link_traffic(link).messages, 1_000);
}

#[test]
fn partial_outage_leaves_other_districts_reachable() {
    let mut city = BarcelonaTopology::build(&LatencyProfile::default());
    let cloud = city.cloud();
    // Take down only district 0's WAN link.
    let f2_0 = city.fog2_nodes()[0];
    let mut plan = FailurePlan::with_seed(1);
    for &(peer, link) in city.network().topology().neighbors(f2_0) {
        if peer == cloud {
            plan.add_outage(link, SimTime::ZERO, SimTime::from_secs(100));
        }
    }
    city.network_mut().set_failures(plan);

    // District 0's sections cannot reach the cloud...
    let d0_sections = city.fog1_in_district(0);
    let blocked = city.fog1_nodes()[d0_sections[0]];
    assert!(city
        .network_mut()
        .send(blocked, cloud, 10, SimTime::ZERO)
        .is_err());
    // ...but district 5's can.
    let d5_sections = city.fog1_in_district(5);
    let open = city.fog1_nodes()[d5_sections[0]];
    assert!(city
        .network_mut()
        .send(open, cloud, 10, SimTime::ZERO)
        .is_ok());
}
