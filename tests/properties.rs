//! Cross-crate property-based tests: invariants that must hold for any
//! workload, not just the Barcelona catalog.

use f2c_smartcity::aggregate::functions::{fold, Decomposable, Moments, SumCount};
use f2c_smartcity::aggregate::RedundancyFilter;
use f2c_smartcity::compress;
use f2c_smartcity::core::{F2cNode, FlushPolicy, RetentionPolicy};
use f2c_smartcity::sensors::{wire, Catalog, ReadingGenerator, SensorId, SensorType, Value};
use proptest::prelude::*;

fn sensor_type_strategy() -> impl Strategy<Value = SensorType> {
    proptest::sample::select(SensorType::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_roundtrip_for_any_generated_stream(
        ty in sensor_type_strategy(),
        pop in 1u32..30,
        seed in any::<u64>(),
        waves in 1u64..10,
    ) {
        let mut gen = ReadingGenerator::for_population(ty, pop, seed);
        for w in 0..waves {
            for r in gen.wave(w * 60) {
                let line = wire::encode(&r);
                prop_assert_eq!(wire::parse(&line).unwrap(), r);
            }
        }
    }

    #[test]
    fn dedup_then_dedup_is_identity(
        ty in sensor_type_strategy(),
        seed in any::<u64>(),
    ) {
        // Filtering an already-filtered stream removes nothing: dedup is
        // idempotent per sensor.
        let mut gen = ReadingGenerator::for_population(ty, 20, seed);
        let mut first = RedundancyFilter::new();
        let mut kept = Vec::new();
        for w in 0..30u64 {
            kept.extend(first.filter_batch(gen.wave(w * 60)));
        }
        let mut second = RedundancyFilter::new();
        let rekept = second.filter_batch(kept.clone());
        prop_assert_eq!(rekept, kept);
    }

    #[test]
    fn compress_roundtrips_any_wire_batch(
        ty in sensor_type_strategy(),
        pop in 1u32..50,
        seed in any::<u64>(),
    ) {
        let mut gen = ReadingGenerator::for_population(ty, pop, seed);
        let mut batch = Vec::new();
        for w in 0..5u64 {
            batch.extend(gen.wave(w * 300));
        }
        let encoded = wire::encode_batch(&batch);
        let packed = compress::compress(&encoded).unwrap();
        prop_assert_eq!(compress::decompress(&packed).unwrap(), encoded);
    }

    #[test]
    fn decomposable_merge_is_order_insensitive(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        split in 1usize..99,
    ) {
        let split = split.min(values.len());
        let (a, b) = values.split_at(split);
        let mut left: Moments = fold(a.iter().copied());
        let right: Moments = fold(b.iter().copied());
        let mut rev_left: Moments = fold(b.iter().copied());
        let rev_right: Moments = fold(a.iter().copied());
        left.merge(&right);
        rev_left.merge(&rev_right);
        prop_assert_eq!(left.count, rev_left.count);
        prop_assert!((left.sum - rev_left.sum).abs() < 1e-6);

        let mut sc: SumCount = fold(values.iter().copied());
        sc.merge(&SumCount::empty());
        prop_assert_eq!(sc.count, values.len() as u64);
    }

    #[test]
    fn node_conservation_offered_equals_stored_plus_suppressed(
        ty in sensor_type_strategy(),
        seed in any::<u64>(),
        waves in 1u64..20,
    ) {
        let catalog = Catalog::barcelona();
        let mut node = F2cNode::fog1(
            0, 0, FlushPolicy::paper_fog1(), RetentionPolicy::keep(86_400)).unwrap();
        let mut gen = ReadingGenerator::for_population(ty, 15, seed);
        let mut offered = 0u64;
        let mut stored = 0u64;
        for w in 0..waves {
            let out = node.ingest_wave(gen.wave(w * 600), w * 600 + 1, &catalog).unwrap();
            offered += out.offered;
            stored += out.stored;
            prop_assert!(out.kept_bytes <= out.raw_bytes);
        }
        prop_assert!(stored <= offered);
        let batch = node.flush(waves * 600 + 1, &catalog).unwrap();
        prop_assert_eq!(batch.records.len() as u64, stored);
    }

    #[test]
    fn flush_is_exactly_once_under_any_schedule(
        flush_times in proptest::collection::vec(1u64..10_000, 1..10),
    ) {
        // However flushes are scheduled, each record ships exactly once.
        let catalog = Catalog::barcelona();
        let mut node = F2cNode::fog1(
            0, 0, FlushPolicy::plain(60), RetentionPolicy::keep(86_400)).unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 1);
        let mut times = flush_times;
        times.sort_unstable();
        let mut shipped = 0u64;
        let mut ingested = 0u64;
        for (wave, t) in times.into_iter().enumerate() {
            let wave = wave as u64;
            let out = node.ingest_wave(gen.wave(wave), t.saturating_sub(1).max(wave), &catalog).unwrap();
            ingested += out.stored;
            shipped += node.flush(t, &catalog).unwrap().records.len() as u64;
        }
        shipped += node.flush(20_000, &catalog).unwrap().records.len() as u64;
        prop_assert_eq!(shipped, ingested);
    }

    #[test]
    fn reading_equality_is_the_dedup_relation(
        idx in 0u32..5,
        t1 in 0u64..1000,
        t2 in 0u64..1000,
        v in -100.0f64..100.0,
    ) {
        use f2c_smartcity::sensors::Reading;
        let a = Reading::new(SensorId::new(SensorType::Temperature, idx), t1, Value::from_f64(v));
        let b = Reading::new(SensorId::new(SensorType::Temperature, idx), t2, Value::from_f64(v));
        prop_assert!(a.is_redundant_with(&b));
        let c = Reading::new(SensorId::new(SensorType::Temperature, idx), t2, Value::from_f64(v + 1.0));
        prop_assert!(!a.is_redundant_with(&c));
    }
}
