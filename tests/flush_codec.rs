//! Flush-codec differential conformance: capture every encoded shipment
//! a seeded city actually puts on the wire (both hops, warm-up and live
//! sharded load) and hold the corpus to three oracles — an independent
//! stream decoder reproduces every batch record-for-record, the `tsenc`
//! payload never costs more than DEFLATE over the verbatim wire text
//! plus the fallback framing, and the corpus-wide uplink total lands
//! the compression win the bench gates on.

use std::collections::BTreeMap;

use f2c_smartcity::compress::{deflate, tsenc};
use f2c_smartcity::core::runtime::populate_city;
use f2c_smartcity::core::{F2cCity, Parallelism, ShipmentRecord};
use f2c_smartcity::query::{parallel, EngineConfig, QueryEngine, WorkloadConfig};
use f2c_smartcity::sensors::wire;

/// One seeded corpus: warm a Barcelona city with the shipment tap open,
/// then keep it open through a sharded closed-loop workload with live
/// flush waves, and return every shipment that crossed either hop.
fn corpus(seed: u64, threads: usize) -> Vec<ShipmentRecord> {
    let mut city = F2cCity::barcelona().expect("city builds");
    city.set_parallelism(Parallelism::new(threads));
    city.set_capture_shipments(true);
    populate_city(&mut city, 20_000, seed, 3_600, 900).expect("warm-up runs");
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let config = WorkloadConfig {
        seed,
        requests: 800,
        users: 16,
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 5_000,
        ..WorkloadConfig::default()
    };
    parallel::run(&mut engine, &config).expect("sharded workload runs");
    engine.city_mut().take_shipment_log()
}

#[test]
fn captured_shipments_decode_and_beat_deflate() {
    let corpus = corpus(2017, 4);
    assert!(
        corpus.len() > 50,
        "corpus suspiciously small ({} shipments) — the tap captured nothing",
        corpus.len()
    );
    assert!(
        corpus.iter().any(|s| s.hop == 1) && corpus.iter().any(|s| s.hop == 2),
        "corpus must cover both flush hops"
    );

    // Oracle 1: a fresh decoder per (hop, origin) stream, fed in capture
    // order, reproduces every batch record-for-record. This is the
    // receiver's mirror-decode check re-run offline, from nothing but
    // the captured bytes.
    let mut decoders: BTreeMap<(u8, u16), tsenc::StreamDecoder> = BTreeMap::new();
    let mut uplink = 0u64;
    let mut verbatim_deflate = 0u64;
    let mut records = 0u64;
    for (i, shipment) in corpus.iter().enumerate() {
        let expected = wire::parse_batch(&shipment.wire).expect("captured wire text parses");
        let decoder = decoders.entry((shipment.hop, shipment.origin)).or_default();
        let decoded = decoder
            .decode_batch(&shipment.payload)
            .unwrap_or_else(|e| panic!("shipment {i} fails to decode: {e}"));
        assert_eq!(
            decoded, expected,
            "shipment {i} (hop {} origin {}) decodes to different records",
            shipment.hop, shipment.origin
        );

        // Oracle 2: the codec never loses to its own fallback — DEFLATE
        // over the verbatim wire batch, plus the stream framing.
        let packed = deflate::compress(&shipment.wire).expect("wire text deflates");
        assert!(
            shipment.payload.len() <= packed.len() + tsenc::FALLBACK_OVERHEAD,
            "shipment {i} (hop {} origin {}): tsenc {} B > deflate {} B + {} B framing",
            shipment.hop,
            shipment.origin,
            shipment.payload.len(),
            packed.len(),
            tsenc::FALLBACK_OVERHEAD,
        );
        uplink += shipment.payload.len() as u64;
        verbatim_deflate += packed.len() as u64;
        records += expected.len() as u64;
    }

    // Oracle 3: across the whole corpus the columnar planes must beat
    // plain DEFLATE by a wide margin, not merely tie it — this is the
    // win `flush.bytes_per_record` gates in CI, reproduced from first
    // principles.
    assert!(records > 0, "corpus carried no records");
    assert!(
        (uplink as f64) < 0.75 * verbatim_deflate as f64,
        "corpus uplink {uplink} B is not meaningfully below deflate {verbatim_deflate} B"
    );
}

#[test]
fn shipment_corpus_is_seed_deterministic_and_thread_invariant() {
    // The capture tap rides the same canonical merge order as every
    // other observable: the corpus must be identical at any worker
    // thread count, and must change with the seed.
    let base = corpus(2017, 1);
    let wide = corpus(2017, 4);
    assert_eq!(
        base, wide,
        "shipment corpus differs between threads=1 and threads=4"
    );
    let other = corpus(2018, 1);
    assert_ne!(base, other, "different seeds must change the corpus");
}
