//! Integration over the assembled city: `F2cCity` + services +
//! participatory sensing + life-cycle end (removal), across all crates.

use f2c_smartcity::citysim::barcelona::LatencyProfile;
use f2c_smartcity::citysim::time::Duration;
use f2c_smartcity::core::hierarchy::DataSource;
use f2c_smartcity::core::placement::ServiceSpec;
use f2c_smartcity::core::service::CityService;
use f2c_smartcity::core::F2cCity;
use f2c_smartcity::dlc::cosa::scc_instantiation;
use f2c_smartcity::dlc::preservation::{purge_expired, RemovalPolicy};
use f2c_smartcity::sensors::sources::ParticipatorySource;
use f2c_smartcity::sensors::{ReadingGenerator, SensorType};

#[test]
fn participatory_readings_flow_through_the_hierarchy() {
    let mut city = F2cCity::barcelona().unwrap();
    let mut phones = ParticipatorySource::new(200, 73, 11);
    let mut offered = 0u64;
    let mut stored = 0u64;
    for round in 0..10u64 {
        let t = round * 300;
        // Group contributions by the section the device is currently in.
        let mut per_section: Vec<Vec<_>> = (0..73).map(|_| Vec::new()).collect();
        for (section, reading) in phones.tick(t) {
            per_section[section as usize].push(reading);
        }
        for (section, readings) in per_section.into_iter().enumerate() {
            if readings.is_empty() {
                continue;
            }
            let out = city.ingest(section, readings, t + 1).unwrap();
            offered += out.offered;
            stored += out.stored;
        }
    }
    assert_eq!(offered, 2_000);
    assert!(stored < offered, "phone noise repeats get deduped too");
    let (fog1_bytes, fog2_bytes) = city.flush_all(4_000).unwrap();
    assert!(fog1_bytes > 0);
    assert_eq!(fog1_bytes, fog2_bytes);
    assert_eq!(city.cloud().store().len() as u64, stored);
}

#[test]
fn a_placed_service_reads_roaming_data_via_the_cost_model() {
    let mut city = F2cCity::barcelona().unwrap();
    // Fixed infrastructure data in section 30.
    let mut gen = ReadingGenerator::for_population(SensorType::AirQuality, 15, 2);
    for w in 0..3u64 {
        city.ingest(30, gen.wave(w * 900), w * 900 + 1).unwrap();
    }
    let mut svc = CityService::place(
        "air-dashboard",
        ServiceSpec::realtime_critical(Duration::from_millis(50)),
        &LatencyProfile::default(),
        Duration::from_millis(1),
    )
    .unwrap();
    // A consumer in section 30 reads locally...
    let local = svc
        .execute(&mut city, 30, SensorType::AirQuality, 0, 10_000, 2_000)
        .unwrap();
    assert_eq!(local.source, DataSource::Local);
    // ...a consumer elsewhere in the same district fetches via the ring.
    let d = (0..73)
        .find(|&s| s != 30 && city.fog1(s).district() == city.fog1(30).district())
        .unwrap();
    let remote = svc
        .execute(&mut city, d, SensorType::AirQuality, 0, 10_000, 2_000)
        .unwrap();
    assert_eq!(remote.source, DataSource::Neighbor(30));
    assert!(remote.latency > local.latency);
}

#[test]
fn the_life_cycle_ends_with_policy_driven_removal() {
    let mut city = F2cCity::barcelona().unwrap();
    let mut meters = ReadingGenerator::for_population(SensorType::GasMeter, 20, 5);
    let mut weather = ReadingGenerator::for_population(SensorType::Weather, 20, 6);
    city.ingest(0, meters.wave(0), 1).unwrap();
    city.ingest(0, weather.wave(0), 1).unwrap();
    city.flush_all(1_000).unwrap();
    let cloud_before = city.cloud().store().len();
    assert!(cloud_before > 0);

    // Three years on, restricted energy data must be destroyed while the
    // public weather data stays. (We purge a snapshot of the cloud archive;
    // the node API exposes the archive read-only by design, so the purge
    // operates on the cloned store as a policy audit.)
    let mut snapshot = city.cloud().store().archive().clone();
    let report = purge_expired(
        &mut snapshot,
        &RemovalPolicy::paper_default(),
        3 * 365 * 86_400,
    );
    assert!(report.removed > 0);
    assert!(snapshot.len() < cloud_before);
    for rec in snapshot.iter() {
        assert_ne!(
            rec.sensor_type(),
            SensorType::GasMeter,
            "restricted meter data must be gone"
        );
    }
}

#[test]
fn the_scc_dlc_instantiation_is_comprehensive() {
    // The architecture the city runs is the verified SCC instantiation of
    // the COSA-DLC model: all 6 Vs covered, all three blocks populated.
    let scc = scc_instantiation();
    assert!(scc.is_comprehensive());
}

#[test]
fn failed_neighbor_fetch_surfaces_as_an_error_not_a_wrong_answer() {
    let mut city = F2cCity::barcelona().unwrap();
    let err = city
        .fetch(0, SensorType::Temperature, 0, 1_000, 500)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no tier holds"), "got: {msg}");
}
