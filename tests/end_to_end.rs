//! End-to-end integration: raw sensor waves → fog-1 acquisition → fog-2 →
//! cloud preservation → open-data dissemination, across all crates.

use f2c_smartcity::core::{F2cNode, FlushPolicy, RetentionPolicy};
use f2c_smartcity::dlc::preservation::{AccessRole, OpenDataPortal, QueryFilter};
use f2c_smartcity::sensors::{Catalog, Category, ReadingGenerator, SensorType};

/// A helper hierarchy: one fog-1, one fog-2, one cloud.
fn chain() -> (F2cNode, F2cNode, F2cNode) {
    let fog1 = F2cNode::fog1(
        0,
        0,
        FlushPolicy::paper_fog1(),
        RetentionPolicy::keep(86_400),
    )
    .unwrap();
    let fog2 = F2cNode::fog2(
        0,
        FlushPolicy::plain(3600),
        RetentionPolicy::keep(7 * 86_400),
    )
    .unwrap();
    let cloud = F2cNode::cloud();
    (fog1, fog2, cloud)
}

#[test]
fn readings_survive_the_full_hierarchy() {
    let catalog = Catalog::barcelona();
    let (mut fog1, mut fog2, mut cloud) = chain();
    let mut gen = ReadingGenerator::for_population(SensorType::Weather, 40, 5);

    let mut stored_total = 0u64;
    for wave in 0..24u64 {
        let t = wave * 300;
        let out = fog1.ingest_wave(gen.wave(t), t + 1, &catalog).unwrap();
        stored_total += out.stored;
    }
    let b1 = fog1.flush(7200, &catalog).unwrap();
    assert_eq!(b1.records.len() as u64, stored_total);
    fog2.receive(b1.records, 7200);
    let b2 = fog2.flush(7200, &catalog).unwrap();
    cloud.receive(b2.records, 7200);

    assert_eq!(cloud.store().len() as u64, stored_total);
    // Every record at the cloud is fully described and quality-tagged.
    for rec in cloud.store().archive().iter() {
        assert!(rec.descriptor().is_fully_described());
        assert!(rec.quality().expect("assessed at fog 1").passed());
    }
}

#[test]
fn portal_roles_gate_cloud_data_by_category() {
    let catalog = Catalog::barcelona();
    let (mut fog1, mut fog2, mut cloud) = chain();

    // Mixed workload: public weather + restricted energy.
    let mut weather = ReadingGenerator::for_population(SensorType::Weather, 10, 1);
    let mut meters = ReadingGenerator::for_population(SensorType::ElectricityMeter, 10, 2);
    for wave in 0..6u64 {
        let t = wave * 900;
        fog1.ingest_wave(weather.wave(t), t + 1, &catalog).unwrap();
        fog1.ingest_wave(meters.wave(t), t + 1, &catalog).unwrap();
    }
    let b = fog1.flush(6000, &catalog).unwrap();
    fog2.receive(b.records, 6000);
    let b = fog2.flush(6000, &catalog).unwrap();
    cloud.receive(b.records, 6000);

    let portal = OpenDataPortal::new();
    let public_all = portal
        .query(
            cloud.store().archive(),
            AccessRole::Public,
            QueryFilter::default(),
        )
        .unwrap();
    assert!(public_all
        .iter()
        .all(|r| r.sensor_type() == SensorType::Weather));

    // Energy explicitly requested by the public is denied, not empty.
    let denied = portal.query(
        cloud.store().archive(),
        AccessRole::Public,
        QueryFilter {
            category: Some(Category::Energy),
            range_s: None,
        },
    );
    assert!(denied.is_err());

    // A city service reads both.
    let service_all = portal
        .query(
            cloud.store().archive(),
            AccessRole::CityService,
            QueryFilter::default(),
        )
        .unwrap();
    assert!(service_all.len() > public_all.len());
}

#[test]
fn fog1_retention_keeps_realtime_data_local_after_flush() {
    let catalog = Catalog::barcelona();
    let (mut fog1, _, _) = chain();
    let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 20, 3);
    for wave in 0..4u64 {
        let t = wave * 900;
        fog1.ingest_wave(gen.wave(t), t + 1, &catalog).unwrap();
    }
    let stored_before = fog1.store().len();
    let batch = fog1.flush(3600, &catalog).unwrap();
    assert!(!batch.records.is_empty());
    // Flushing ships copies; local data stays for real-time reads.
    assert_eq!(fog1.store().len(), stored_before);
    // A day later, retention has evicted everything.
    let _ = fog1.flush(2 * 86_400, &catalog).unwrap();
    assert_eq!(fog1.store().len(), 0);
}

#[test]
fn compression_reduces_what_crosses_the_uplink() {
    let catalog = Catalog::barcelona();
    let (mut fog1, _, _) = chain();
    let mut gen = ReadingGenerator::for_population(SensorType::NoiseTrafficZone, 300, 4);
    for wave in 0..10u64 {
        let t = wave * 60;
        fog1.ingest_wave(gen.wave(t), t + 1, &catalog).unwrap();
    }
    let batch = fog1.flush(600, &catalog).unwrap();
    let compressed = batch.compressed_bytes.expect("paper policy compresses");
    assert!(
        compressed * 2 < batch.wire_bytes,
        "compression should at least halve Sentilo text ({} vs {})",
        compressed,
        batch.wire_bytes
    );
    assert_eq!(batch.uplink_bytes(), compressed);
}
