//! Parallel-runtime conformance: the district-sharded workload runtime
//! ([`f2c_smartcity::query::parallel`]) must produce **byte-identical**
//! run artifacts at every worker-thread count — the per-request
//! transcript and its hash, every node's store and sketch ledger, the
//! unified metric snapshot, the trace stream and the incident timeline.
//! The shard decomposition (one logical shard per district) and every
//! merge order are fixed by construction; threads only carry shards, so
//! `PARALLELISM=8` must reproduce `PARALLELISM=1` exactly.
//!
//! The oracle reports the *first divergent byte offset* on failure, so
//! a nondeterminism regression pinpoints which artifact — and where —
//! stopped being a pure function of the seed.

use f2c_smartcity::citysim::net::FailurePlan;
use f2c_smartcity::core::runtime::populate_city;
use f2c_smartcity::core::{ChaosSite, F2cCity, Parallelism};
use f2c_smartcity::query::{parallel, EngineConfig, QueryEngine, WorkloadConfig};
use f2c_smartcity::sensors::wire;

/// Asserts two replica byte streams are identical, reporting the first
/// divergent offset and a ±8-byte hex window on failure.
fn assert_byte_identical(a: &[u8], b: &[u8], label: &str) {
    if a == b {
        return;
    }
    let common = a.len().min(b.len());
    let offset = (0..common).find(|&i| a[i] != b[i]).unwrap_or(common);
    let window =
        |s: &[u8]| -> Vec<u8> { s[offset.saturating_sub(8)..(offset + 8).min(s.len())].to_vec() };
    panic!(
        "{label}: replicas diverge at byte offset {offset} \
         (lengths {} vs {});\n  a[..±8] = {:02x?}\n  b[..±8] = {:02x?}",
        a.len(),
        b.len(),
        window(a),
        window(b),
    );
}

/// Renders every artifact of a finished run into one byte stream:
/// transcript, report accounting, per-node store and sketch-ledger
/// fingerprints, the cloud archive's full wire text, the metric
/// snapshot, the trace stream and the incident timeline.
fn run_artifacts(engine: &QueryEngine, transcript: &[u8], summary: &str) -> Vec<u8> {
    let mut out = transcript.to_vec();
    out.extend_from_slice(summary.as_bytes());
    let city = engine.city();
    for s in 0..city.section_count() {
        let store = city.fog1(s).store();
        let ledger = city.fog1(s).sketches();
        out.extend_from_slice(
            format!(
                "fog1[{s}] len={} pending={} wire={} evicted={} ledger_len={} folds={}\n",
                store.len(),
                store.pending_len(),
                store.wire_bytes(),
                store.evicted_before_s(),
                ledger.len(),
                ledger.folds(),
            )
            .as_bytes(),
        );
    }
    for d in 0..city.district_count() {
        let store = city.fog2(d).store();
        let ledger = city.fog2(d).sketches();
        out.extend_from_slice(
            format!(
                "fog2[{d}] len={} pending={} wire={} ledger_len={} folds={} crc={}\n",
                store.len(),
                store.pending_len(),
                store.wire_bytes(),
                ledger.len(),
                ledger.folds(),
                ledger.crc_failures(),
            )
            .as_bytes(),
        );
    }
    let cloud = city.cloud().store();
    out.extend_from_slice(
        format!(
            "cloud len={} wire={} ledger_len={} folds={}\n",
            cloud.len(),
            cloud.wire_bytes(),
            city.cloud().sketches().len(),
            city.cloud().sketches().folds(),
        )
        .as_bytes(),
    );
    for record in cloud.range(0, u64::MAX) {
        out.extend_from_slice(wire::encode(record.reading()).as_bytes());
        out.push(b'\n');
    }
    let snapshot = city.metrics().snapshot();
    for (key, value) in &snapshot.counters {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    for (key, value) in &snapshot.gauges {
        out.extend_from_slice(format!("{key}={value}\n").as_bytes());
    }
    // The flush-codec tap: every encoded shipment that crossed either
    // hop, raw payload bytes included — cross-batch dictionary state
    // makes each payload depend on every prior flush of its stream, so
    // any thread-order leak anywhere upstream shows here.
    for shipment in city.shipment_log() {
        out.extend_from_slice(
            format!(
                "shipment hop={} origin={} t={} payload={} wire={}\n",
                shipment.hop,
                shipment.origin,
                shipment.at_s,
                shipment.payload.len(),
                shipment.wire.len(),
            )
            .as_bytes(),
        );
        out.extend_from_slice(&shipment.payload);
        out.push(b'\n');
    }
    out.extend_from_slice(&city.tracer().encode());
    // The diagnosis plane rides the same oracle: explain transcripts,
    // per-bucket trace exemplars and the alert log are shard-merged
    // observables, so their exports must be byte-identical too.
    out.extend_from_slice(city.explains().export().to_pretty().as_bytes());
    out.extend_from_slice(city.exemplars().export().to_pretty().as_bytes());
    out.extend_from_slice(city.burn_monitor().export().to_pretty().as_bytes());
    for incident in city.timeline().iter() {
        out.extend_from_slice(
            format!(
                "incident t={} site={} kind={}\n",
                incident.at_s,
                incident.site,
                incident.kind.label()
            )
            .as_bytes(),
        );
    }
    out
}

/// One sharded-workload replica at `threads` worker threads: warm a
/// seeded city, optionally install a fault storm, drive the sharded
/// closed loop, and return every run artifact as one byte stream.
fn shard_replica(config: &WorkloadConfig, threads: usize, storm: bool) -> Vec<u8> {
    let mut city = F2cCity::barcelona().expect("city builds");
    city.set_parallelism(Parallelism::new(threads));
    city.set_capture_shipments(true);
    populate_city(&mut city, 20_000, config.seed, config.start_s, 900).expect("warm-up runs");
    if storm {
        let mut plan = FailurePlan::with_seed(config.seed);
        plan.set_shipment_loss(0.10);
        plan.set_shipment_corruption(0.08);
        city.set_failures(plan);
        city.inject_node_outage(
            ChaosSite::Fog1(5),
            config.start_s + 50,
            config.start_s + 380,
        );
        city.inject_node_outage(ChaosSite::Cloud, config.start_s + 400, config.start_s + 500);
    }
    let mut engine = QueryEngine::new(city, EngineConfig::default());
    let mut cfg = *config;
    cfg.record_transcript = true;
    let report = parallel::run(&mut engine, &cfg).expect("sharded workload runs");
    let summary = format!(
        "report issued={} answered={} shed={} unanswerable={} hash={:016x} end={}\n",
        report.issued,
        report.answered,
        report.shed,
        report.unanswerable,
        report.transcript_hash,
        report.sim_end_s,
    );
    run_artifacts(&engine, &report.transcript, &summary)
}

#[test]
fn sharded_workload_is_thread_count_invariant() {
    // The tentpole conformance sweep, query-serving plane: live flush
    // and ingest barriers, every artifact byte-identical at 1/2/4/8
    // worker threads.
    let config = WorkloadConfig {
        seed: 2017,
        requests: 1_200,
        users: 24,
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 5_000,
        ..WorkloadConfig::default()
    };
    let baseline = shard_replica(&config, 1, false);
    assert!(
        baseline.len() > 10_000,
        "artifact stream suspiciously small ({} bytes)",
        baseline.len()
    );
    for threads in [2usize, 4, 8] {
        let other = shard_replica(&config, threads, false);
        assert_byte_identical(
            &baseline,
            &other,
            &format!("sharded workload, threads=1 vs threads={threads}"),
        );
    }
}

#[test]
fn sharded_storm_is_thread_count_invariant() {
    // Chaos composes with the sharded runtime: loss/corruption coins
    // and crash windows under live sharded load must not introduce any
    // thread-count dependence.
    let config = WorkloadConfig {
        seed: 4099,
        requests: 800,
        users: 16,
        start_s: 3_600,
        flush_period_s: 300,
        ingest_period_s: 300,
        ingest_scale: 5_000,
        ..WorkloadConfig::default()
    };
    let baseline = shard_replica(&config, 1, true);
    let other = shard_replica(&config, 4, true);
    assert_byte_identical(&baseline, &other, "sharded storm, threads=1 vs threads=4");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The satellite oracle: for *arbitrary* seeds, population
        /// shapes, barrier cadences and thread counts, the sharded
        /// runtime's full artifact stream equals the single-thread
        /// run's byte-for-byte.
        #[test]
        fn arbitrary_shapes_are_thread_count_invariant(
            seed in any::<u64>(),
            users in 1u32..32,
            requests in 40u64..300,
            threads in 2usize..9,
            flush_period_s in proptest::sample::select(vec![0u64, 300, 900]),
            ingest_period_s in proptest::sample::select(vec![0u64, 300]),
        ) {
            let config = WorkloadConfig {
                seed,
                requests,
                users,
                start_s: 3_600,
                flush_period_s,
                ingest_period_s,
                ingest_scale: 5_000,
                ..WorkloadConfig::default()
            };
            let baseline = shard_replica(&config, 1, false);
            let other = shard_replica(&config, threads, false);
            prop_assert_eq!(
                baseline.len(),
                other.len(),
                "artifact lengths diverge at threads={}", threads
            );
            let offset = (0..baseline.len()).find(|&i| baseline[i] != other[i]);
            prop_assert!(
                offset.is_none(),
                "artifacts diverge at byte offset {:?} (threads={})",
                offset,
                threads
            );
        }
    }
}
