//! # f2c-smartcity — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency, for the examples
//! under `examples/` and downstream users who want everything:
//!
//! * [`sensors`] — the Sentilo-like sensor substrate (Table I catalog),
//! * [`citysim`] — the discrete-event network simulator,
//! * [`compress`] — the from-scratch deflate-style codec,
//! * [`aggregate`] — aggregation filters, sketches and protocols, plus
//!   the sketch plane's mergeable partials and per-node ledgers,
//! * [`dlc`] — the SCC-DLC life-cycle model,
//! * [`core`] — the F2C data-management architecture itself,
//! * [`qos`] — per-service QoS classes, quotas and deadline budgets,
//! * [`query`] — consumer-facing query serving over the hierarchy,
//! * [`obs`] — the observability plane: sim-time tracing, the unified
//!   metrics registry, the `BENCH_*.json` export and the perf-budget gate.
//!
//! See the repository README for the quickstart and DESIGN.md /
//! EXPERIMENTS.md for the reproduction index.
//!
//! # Example
//!
//! ```
//! use f2c_smartcity::core::{F2cNode, FlushPolicy, RetentionPolicy};
//! use f2c_smartcity::sensors::{Catalog, ReadingGenerator, SensorType};
//!
//! let catalog = Catalog::barcelona();                 // Table I, verbatim
//! let mut fog1 = F2cNode::fog1(3, 21, FlushPolicy::paper_fog1(),
//!                              RetentionPolicy::keep(86_400))?;
//! let mut sensors = ReadingGenerator::for_population(SensorType::Temperature, 50, 42);
//! let outcome = fog1.ingest_wave(sensors.wave(0), 1, &catalog)?;
//! assert_eq!(outcome.offered, 50);
//! let batch = fog1.flush(900, &catalog)?;             // aggregated + compressed
//! assert!(batch.compressed_bytes.is_some());
//! # Ok::<(), f2c_smartcity::core::Error>(())
//! ```

pub use citysim;
pub use f2c_aggregate as aggregate;
pub use f2c_compress as compress;
pub use f2c_core as core;
pub use f2c_obs as obs;
pub use f2c_qos as qos;
pub use f2c_query as query;
pub use scc_dlc as dlc;
pub use scc_sensors as sensors;
